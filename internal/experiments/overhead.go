// The logging-overhead harness behind `pilot-bench -overhead`: the
// Section III.E question ("what does logging cost per call?") answered
// at micro scale. Where RunT1 times whole table cells, RunOverhead
// isolates the per-Pilot-call cost — ns/op, B/op, allocs/op — of the
// logging hot path itself, with logging on and off, at increasing rank
// and message counts, and writes the result as BENCH_overhead.json so
// `make bench-compare` can hold future changes to it.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/mpe"
	"repro/internal/mpi"
	"repro/internal/stats"
)

// prePRNsOp records the pre-optimisation ns/op of the micro rows,
// measured on the reference machine (single-core Xeon 2.10 GHz,
// -benchtime 200x) before the fixed-cargo records, chunked arenas and
// append-style cargo builders landed. They ride along in the JSON so a
// fresh run shows the improvement without digging through git history.
// Pre-PR allocation figures for the same rows: state_start_end 651 B/op,
// finish_merge_8x1000 5,929,805 B/op and 14,579 allocs/op.
var prePRNsOp = map[string]float64{
	"mpe/state_start_end|on":     182.1,
	"mpe/state_start_end|off":    4.715,
	"mpe/finish_merge_8x1000|on": 5636040,
}

// OverheadRow is one measured cell: a micro benchmark of a single
// logging call, or a ping-pong workload cell where every op folds
// CallsPerOp Pilot calls (the ns/op is already divided down to one
// call).
type OverheadRow struct {
	// Name identifies the benchmark ("mpe/state_start_end", "pingpong").
	Name string `json:"name"`
	// Logging is "on" (MPE buffers records) or "off" (the no-service
	// baseline the paper's table compares against).
	Logging string `json:"logging"`
	// Transport names the rank substrate for transport ping-pong rows
	// ("inproc", "socket", "tcp"); empty for every other row.
	Transport string `json:"transport,omitempty"`
	// Ranks and Messages scale the workload rows (0 for micro rows).
	Ranks    int `json:"ranks,omitempty"`
	Messages int `json:"messages,omitempty"`
	// CallsPerOp is how many Pilot calls one op covers; NsPerOp, BPerOp
	// and AllocsPerOp are already per single call.
	CallsPerOp  int     `json:"calls_per_op,omitempty"`
	NsPerOp     float64 `json:"ns_op"`
	BPerOp      float64 `json:"b_op"`
	AllocsPerOp float64 `json:"allocs_op"`
	// PrePRNsPerOp and ImprovementPct compare against the recorded
	// pre-optimisation numbers, where they exist.
	PrePRNsPerOp   float64 `json:"pre_pr_ns_op,omitempty"`
	ImprovementPct float64 `json:"improvement_pct,omitempty"`
}

func (r OverheadRow) key() string {
	k := r.Name + "|" + r.Logging
	if r.Transport != "" {
		k += "|" + r.Transport
	}
	return k
}

// String renders the row for the pilot-bench console output.
func (r OverheadRow) String() string {
	s := fmt.Sprintf("%-28s log=%-3s %12.1f ns/op %10.1f B/op %8.2f allocs/op",
		r.Name, r.Logging, r.NsPerOp, r.BPerOp, r.AllocsPerOp)
	if r.Ranks > 0 {
		s = fmt.Sprintf("%-28s log=%-3s %12.1f ns/call %9.1f B/call %7.2f allocs/call  (W=%d M=%d)",
			r.Name, r.Logging, r.NsPerOp, r.BPerOp, r.AllocsPerOp, r.Ranks, r.Messages)
	}
	if r.Transport != "" {
		s += "  transport=" + r.Transport
	}
	if r.PrePRNsPerOp > 0 {
		s += fmt.Sprintf("  pre-PR %.1f (%+.0f%%)", r.PrePRNsPerOp, -r.ImprovementPct)
	}
	return s
}

// OverheadReport is the BENCH_overhead.json schema.
type OverheadReport struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// Micro rows are single logging calls; Workload rows are ping-pong
	// table cells with the ns/op divided down to one Pilot call.
	Micro    []OverheadRow `json:"micro"`
	Workload []OverheadRow `json:"workload"`
	// Serve rows are tile-service load-harness phases from
	// `pilot-bench -serve` (cold vs cached latency, singleflight check);
	// informational, never gated by CompareOverhead.
	Serve []ServeRow `json:"serve,omitempty"`
	// IndexQuery rows measure seek-based ".idx" sidecar queries against
	// the full scan on a synthesized large log (pilot-bench's -index-mb
	// flag sizes it); informational, never gated by CompareOverhead.
	IndexQuery []IndexQueryRow `json:"index_query,omitempty"`
	// Analyze rows measure pilot-analyze verdict and diff passes over a
	// synthesized large log (`pilot-bench -analyze`, sized by
	// -analyze-mb); informational, never gated by CompareOverhead.
	Analyze []AnalyzeRow `json:"analyze,omitempty"`
}

// WriteJSON writes the report, indented, to path.
func (r *OverheadReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadOverheadReport loads a BENCH_overhead.json.
func ReadOverheadReport(path string) (*OverheadReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r OverheadReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// finish fills an OverheadRow from a benchmark result, dividing down to
// one Pilot call and attaching the pre-PR baseline if recorded.
func finishRow(row OverheadRow, res testing.BenchmarkResult) OverheadRow {
	calls := row.CallsPerOp
	if calls <= 0 {
		calls = 1
	}
	n := float64(res.N) * float64(calls)
	row.NsPerOp = float64(res.T.Nanoseconds()) / n
	row.BPerOp = float64(res.MemBytes) / n
	row.AllocsPerOp = float64(res.MemAllocs) / n
	if pre, ok := prePRNsOp[row.key()]; ok {
		row.PrePRNsPerOp = pre
		if pre > 0 {
			row.ImprovementPct = (pre - row.NsPerOp) / pre * 100
		}
	}
	return row
}

// microLogger builds a one-rank logger for the micro rows.
func microLogger(enabled bool) (*mpe.Logger, mpe.StateID, mpe.EventID) {
	w := mpi.NewWorld(1, mpi.Options{})
	g := mpe.NewGroup(w, enabled)
	sid := g.DescribeState("PI_Write", "green")
	eid := g.DescribeEvent("MsgDeparture", "white")
	return g.Logger(0), sid, eid
}

// discardEvery bounds arena growth during open-ended benchmark loops:
// recycling the chunks every 1024 iterations is the steady state a real
// run reaches through Finish, at a per-op cost in the noise.
const discardEvery = 1024

func benchStatePair(enabled bool) testing.BenchmarkResult {
	l, sid, _ := microLogger(enabled)
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.StateStart(sid, "line: x.go:1")
			l.StateEnd(sid, "")
			if i%discardEvery == discardEvery-1 {
				l.Discard()
			}
		}
	})
}

func benchEventBytes() testing.BenchmarkResult {
	l, _, eid := microLogger(true)
	var cb mpe.Cargo
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.EventBytes(eid, cb.Reset().KV("chan", "C1").Str(" val: ").Int(42).Bytes())
			if i%discardEvery == discardEvery-1 {
				l.Discard()
			}
		}
	})
}

func benchLogSend() testing.BenchmarkResult {
	l, _, _ := microLogger(true)
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.LogSend(1, 2, 64)
			if i%discardEvery == discardEvery-1 {
				l.Discard()
			}
		}
	})
}

func benchFinishMerge() testing.BenchmarkResult { return benchFinishMergeMode(false) }

// benchFinishMergeMode times the 8-rank wrap-up merge, plain or with the
// inline ".idx" builder riding along (FinishIndexed) — the pair of rows
// the index-emission budget is gated on.
func benchFinishMergeMode(indexed bool) testing.BenchmarkResult {
	const ranks = 8
	const recsPerRank = 1000
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w := mpi.NewWorld(ranks, mpi.Options{})
			g := mpe.NewGroup(w, true)
			sid := g.DescribeState("PI_Write", "green")
			errs := w.Run(func(r *mpi.Rank) error {
				l := g.Logger(r.ID())
				for j := 0; j < recsPerRank; j++ {
					l.StateStart(sid, "line: bench.go:1")
					l.StateEnd(sid, "cargo")
				}
				var out io.Writer
				if r.ID() == 0 {
					out = discardWriter{}
				}
				if indexed {
					_, err := l.FinishIndexed(out)
					return err
				}
				return l.Finish(out)
			})
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

func nsPerOp(r testing.BenchmarkResult) float64 {
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

func allocsPerOp(r testing.BenchmarkResult) float64 {
	return float64(r.MemAllocs) / float64(r.N)
}

// faster keeps the lower-ns/op of two measurements of the same bench.
func faster(a, b testing.BenchmarkResult) testing.BenchmarkResult {
	if nsPerOp(b) < nsPerOp(a) {
		return b
	}
	return a
}

// best3 measures fn three times and keeps the fastest run. Min ns/op is
// the noise-robust micro-benchmark estimator on a shared machine —
// interference only ever adds time — and since both the committed
// baseline and the -compare re-measurement go through it, the
// regression gate stops tripping on load-mode jitter.
func best3(fn func() testing.BenchmarkResult) testing.BenchmarkResult {
	best := fn()
	for i := 0; i < 2; i++ {
		best = faster(best, fn())
	}
	return best
}

// mergeBudgetHolds checks the inline-index emission budget: at most 5%
// over the plain merge's time and no extra allocations beyond run noise
// (the merge itself allocates thousands per op for world setup; the
// builder must add none in steady state, so a 1% + small-constant band
// covers scheduler jitter without hiding a real per-record leak).
func mergeBudgetHolds(plain, indexed testing.BenchmarkResult) bool {
	if nsPerOp(indexed) > nsPerOp(plain)*1.05 {
		return false
	}
	return allocsPerOp(indexed) <= allocsPerOp(plain)*1.01+16
}

// benchStatsObserve times one live-metrics observation — the cost the
// stats collector adds to every instrumented send. "off" measures the
// nil-collector gate, the disabled state every run without -pistats
// pays.
func benchStatsObserve(enabled bool) testing.BenchmarkResult {
	var c *stats.Collector
	if enabled {
		c = stats.New(4)
		c.SetChannels(8)
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.SendObserved(1, 3, 128, 250)
		}
	})
}

func benchSpillStatePair(dir string, batch, format int) (testing.BenchmarkResult, error) {
	w := mpi.NewWorld(1, mpi.Options{})
	g := mpe.NewGroup(w, true)
	g.EnableSpill(filepath.Join(dir, fmt.Sprintf("spill-v%d-batch%d.clog2", format, batch)))
	g.SetSpillBatch(batch)
	g.SetSpillFormat(format)
	sid := g.DescribeState("PI_Write", "green")
	if err := g.SpillDefs(); err != nil {
		return testing.BenchmarkResult{}, err
	}
	l := g.Logger(0)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.StateStart(sid, "line: x.go:1")
			l.StateEnd(sid, "")
			if i%discardEvery == discardEvery-1 {
				l.Discard()
			}
		}
	})
	return res, l.SpillError()
}

// benchPingPong times one overhead-table-style cell: workers parallel
// round trips, msgs messages per worker, 4 Pilot calls per message
// (main PI_Write + worker PI_Read + worker PI_Write + main PI_Read).
// One benchmark op is a whole run including runtime setup and teardown;
// finishRow divides the result down to a single call.
func benchPingPong(workers, msgs int, services, dir string, metrics bool) (testing.BenchmarkResult, error) {
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := core.Config{
				NumProcs:     workers + 1,
				Services:     services,
				CheckLevel:   3,
				JumpshotPath: filepath.Join(dir, "pingpong.clog2"),
				Metrics:      metrics,
			}
			r, err := core.NewRuntime(cfg)
			if err != nil {
				benchErr = err
				b.FailNow()
			}
			to := make([]*core.Channel, workers)
			from := make([]*core.Channel, workers)
			worker := func(self *core.Self, index int, arg any) int {
				var v int
				for j := 0; j < msgs; j++ {
					if err := to[index].Read("%d", &v); err != nil {
						return 1
					}
					if err := from[index].Write("%d", v+1); err != nil {
						return 1
					}
				}
				return 0
			}
			for wi := 0; wi < workers; wi++ {
				p, err := r.CreateProcess(worker, wi, nil)
				if err != nil {
					benchErr = err
					b.FailNow()
				}
				if to[wi], err = r.CreateChannel(r.MainProc(), p); err != nil {
					benchErr = err
					b.FailNow()
				}
				if from[wi], err = r.CreateChannel(p, r.MainProc()); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
			if _, err := r.StartAll(); err != nil {
				benchErr = err
				b.FailNow()
			}
			for j := 0; j < msgs; j++ {
				for wi := 0; wi < workers; wi++ {
					if err := to[wi].Write("%d", j); err != nil {
						benchErr = err
						b.FailNow()
					}
				}
				for wi := 0; wi < workers; wi++ {
					var v int
					if err := from[wi].Read("%d", &v); err != nil {
						benchErr = err
						b.FailNow()
					}
					if v != j+1 {
						benchErr = fmt.Errorf("pingpong: got %d, want %d", v, j+1)
						b.FailNow()
					}
				}
			}
			if err := r.StopMain(0); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	return res, benchErr
}

// RunOverhead measures the logging hot path: micro rows time single MPE
// calls (state pair, solo event via the cargo builder, message-arrow
// half, the 8-rank Finish merge, and the spill write-through at batch 1
// vs 64); workload rows time ping-pong cells at increasing rank and
// message counts with logging on and off, divided down to ns per Pilot
// call. The report carries the recorded pre-optimisation ns/op so the
// improvement is visible in the JSON itself.
func RunOverhead(opt Options) (*OverheadReport, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	rep := &OverheadReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}

	addMicro := func(row OverheadRow, res testing.BenchmarkResult) {
		row = finishRow(row, res)
		rep.Micro = append(rep.Micro, row)
		opt.logf("OV %s", row)
	}
	addMicro(OverheadRow{Name: "mpe/state_start_end", Logging: "on", CallsPerOp: 2}, best3(func() testing.BenchmarkResult { return benchStatePair(true) }))
	addMicro(OverheadRow{Name: "mpe/state_start_end", Logging: "off", CallsPerOp: 2}, best3(func() testing.BenchmarkResult { return benchStatePair(false) }))
	addMicro(OverheadRow{Name: "mpe/event_bytes", Logging: "on"}, best3(benchEventBytes))
	addMicro(OverheadRow{Name: "mpe/log_send", Logging: "on"}, best3(benchLogSend))
	// The merge with and without the inline index builder, gated in-run:
	// emitting the sidecar may cost at most 5% merge time and no extra
	// steady-state allocations (the pooled Builder is the whole point).
	// Interleaved best-of-N per mode, sampling until the budget holds or
	// six rounds are spent: the per-mode minima only converge downward,
	// so a genuinely over-budget builder still fails every round, while
	// scheduler jitter on a ~3.5ms/op benchmark (routinely ±10% between
	// two 1-second measurements) stops producing false alarms.
	mergePlain := benchFinishMerge()
	mergeIndexed := benchFinishMergeMode(true)
	for round := 1; round < 6 && !mergeBudgetHolds(mergePlain, mergeIndexed); round++ {
		opt.logf("OV merge+index over budget, re-measuring (round %d)", round+1)
		mergePlain = faster(mergePlain, benchFinishMerge())
		mergeIndexed = faster(mergeIndexed, benchFinishMergeMode(true))
	}
	if !mergeBudgetHolds(mergePlain, mergeIndexed) {
		return nil, fmt.Errorf(
			"overhead: inline index emission blew its budget: merge %.0f ns/op %.1f allocs/op, indexed %.0f ns/op %.1f allocs/op (budget: <=5%% time, no extra allocs)",
			nsPerOp(mergePlain), allocsPerOp(mergePlain), nsPerOp(mergeIndexed), allocsPerOp(mergeIndexed))
	}
	addMicro(OverheadRow{Name: "mpe/finish_merge_8x1000", Logging: "on"}, mergePlain)
	addMicro(OverheadRow{Name: "mpe/finish_merge_idx_8x1000", Logging: "on"}, mergeIndexed)
	// The live-metrics observation cost: "on" is one SendObserved through
	// the per-rank shard and channel cell, "off" the nil-collector gate.
	addMicro(OverheadRow{Name: "stats/send_observed", Logging: "on"}, best3(func() testing.BenchmarkResult { return benchStatsObserve(true) }))
	addMicro(OverheadRow{Name: "stats/send_observed", Logging: "off"}, best3(func() testing.BenchmarkResult { return benchStatsObserve(false) }))
	// Spill write-through at batch 1 vs 64, in both on-disk formats: the
	// "mpe/spill_state_pair" rows track the default (v2, framed segments),
	// the "mpe/spill_v1_state_pair" rows the legacy raw stream they
	// replaced — the framing-overhead budget is v2 at most 15% over v1 at
	// batch 1 (in practice the CRC and 25-byte header disappear inside the
	// write syscall).
	for _, batch := range []int{1, 64} {
		for _, v := range []struct {
			version int
			name    string
		}{
			{2, "mpe/spill_state_pair"},
			{1, "mpe/spill_v1_state_pair"},
		} {
			var res testing.BenchmarkResult
			for i := 0; i < 3; i++ {
				r, err := benchSpillStatePair(opt.OutDir, batch, v.version)
				if err != nil {
					return nil, fmt.Errorf("spill v%d batch %d: %w", v.version, batch, err)
				}
				if i == 0 {
					res = r
				} else {
					res = faster(res, r)
				}
			}
			addMicro(OverheadRow{
				Name: fmt.Sprintf("%s/batch=%d", v.name, batch), Logging: "on", CallsPerOp: 2,
			}, res)
		}
	}

	cells := []struct{ workers, msgs int }{
		{2, 500}, {4, 500}, {8, 500}, {4, 2000},
	}
	variants := []struct {
		services string
		metrics  bool
		logging  string
	}{
		{"", false, "off"},
		{"j", false, "on"},
		// Logging plus the live stats collector: the full observability
		// cost a `-pistats` run pays per Pilot call.
		{"j", true, "on+stats"},
	}
	for _, c := range cells {
		for _, v := range variants {
			logging := v.logging
			res, err := benchPingPong(c.workers, c.msgs, v.services, opt.OutDir, v.metrics)
			if err != nil {
				return nil, fmt.Errorf("pingpong W=%d M=%d log=%s: %w", c.workers, c.msgs, logging, err)
			}
			row := finishRow(OverheadRow{
				Name: "pingpong", Logging: logging,
				Ranks: c.workers, Messages: c.msgs,
				CallsPerOp: 4 * c.workers * c.msgs,
			}, res)
			rep.Workload = append(rep.Workload, row)
			opt.logf("OV %s", row)
		}
	}

	// Transport rows: raw round trips per rank substrate, the in-process
	// baseline next to the multi-process wire (pilot-bench's -transport
	// flag selects which; the multi-process rows re-execute the host
	// binary, so only binaries with a TransportPingPongChild hook can run
	// them).
	for _, tr := range opt.Transports {
		res, err := benchTransportPingPong(tr, opt.SpawnCommand)
		if err != nil {
			return nil, fmt.Errorf("transport pingpong %s: %w", tr, err)
		}
		row := finishRow(OverheadRow{
			Name: "transport_pingpong", Logging: "off", Transport: tr,
			Ranks: 2, CallsPerOp: 2,
		}, res)
		rep.Workload = append(rep.Workload, row)
		opt.logf("OV %s", row)
	}
	return rep, nil
}

// OverheadDelta is one row's baseline-vs-fresh comparison.
type OverheadDelta struct {
	Name    string
	Logging string
	// OldNs and NewNs are ns/op (per Pilot call for workload rows).
	OldNs, NewNs float64
	// Pct is the relative change, positive = slower.
	Pct float64
	// Gated marks micro rows, the ones a regression fails on; workload
	// cells carry scheduler noise and are reported but not gated.
	Gated bool
	// Regressed is set when a gated row got slower than the tolerance.
	Regressed bool
}

func (d OverheadDelta) String() string {
	verdict := "ok  "
	if d.Regressed {
		verdict = "FAIL"
	} else if !d.Gated {
		verdict = "info"
	}
	return fmt.Sprintf("%s %-32s log=%-3s %12.1f -> %10.1f ns/op (%+.1f%%)",
		verdict, d.Name, d.Logging, d.OldNs, d.NewNs, d.Pct)
}

// CompareOverhead diffs a fresh report against a baseline: micro rows
// whose ns/op regressed by more than tolPct percent AND by more than an
// absolute 25ns noise floor fail; workload rows are informational. Rows
// present on only one side are skipped.
func CompareOverhead(baseline, fresh *OverheadReport, tolPct float64) (deltas []OverheadDelta, regressed bool) {
	index := func(rows []OverheadRow) map[string]OverheadRow {
		m := make(map[string]OverheadRow, len(rows))
		for _, r := range rows {
			key := r.key()
			if r.Ranks > 0 {
				key = fmt.Sprintf("%s|%d|%d", key, r.Ranks, r.Messages)
			}
			m[key] = r
		}
		return m
	}
	diff := func(old, new map[string]OverheadRow, gated bool) {
		for key, b := range old {
			f, ok := new[key]
			if !ok || b.NsPerOp <= 0 {
				continue
			}
			d := OverheadDelta{
				Name: b.Name, Logging: b.Logging,
				OldNs: b.NsPerOp, NewNs: f.NsPerOp,
				Pct:   (f.NsPerOp - b.NsPerOp) / b.NsPerOp * 100,
				Gated: gated,
			}
			// Sub-100ns rows sit below the absolute noise floor of a
			// shared machine (CPU frequency modes alone swing a 40ns
			// loop by ±15ns between runs), so a relative gate needs an
			// absolute-delta escape hatch: a row only regresses when it
			// is over tolerance AND the delta exceeds the floor. Rows in
			// the µs/ms range are unaffected — 25ns is invisible there.
			const noiseFloorNs = 25
			d.Regressed = gated && d.Pct > tolPct && f.NsPerOp-b.NsPerOp > noiseFloorNs
			if d.Regressed {
				regressed = true
			}
			deltas = append(deltas, d)
		}
	}
	diff(index(baseline.Micro), index(fresh.Micro), true)
	diff(index(baseline.Workload), index(fresh.Workload), false)
	sort.Slice(deltas, func(i, j int) bool {
		a, b := deltas[i], deltas[j]
		if a.Gated != b.Gated {
			return a.Gated
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Logging < b.Logging
	})
	return deltas, regressed
}
