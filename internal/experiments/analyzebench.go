// The analyzer-throughput harness behind `pilot-bench -analyze`:
// synthesize a large CLOG-2 log (the same shape the index harness uses)
// and measure a full pilot-analyze verdict pass and a self-diff over it
// — the numbers behind the "analyze" section of BENCH_overhead.json.
// The rows are informational (never gated by CompareOverhead): the
// analyzer runs offline, after a trace is collected, so its cost is a
// capacity-planning figure rather than a hot-path budget.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analyze"
)

// AnalyzeRow is one analyzer measurement on the synthesized log.
type AnalyzeRow struct {
	// Name identifies the pass ("analyze_full_pass", "diff_self").
	Name string `json:"name"`
	// LogMB and Records describe the synthesized log.
	LogMB   float64 `json:"log_mb"`
	Records int64   `json:"records"`
	// P50Ns is the median wall time of the pass over the repetitions;
	// NsPerMB and MBPerSec normalize it by log size.
	P50Ns    float64 `json:"p50_ns"`
	NsPerMB  float64 `json:"ns_per_mb"`
	MBPerSec float64 `json:"mb_per_sec"`
	// Findings is how many findings the verdict carried (the synthetic
	// log's send-only message pattern trips the imbalance detector, so a
	// nonzero count here proves the detectors actually ran).
	Findings int `json:"findings"`
}

// String renders the row for the pilot-bench console output.
func (r AnalyzeRow) String() string {
	return fmt.Sprintf("%-20s %7.1f MB %10d records  p50 %12.0f ns  %10.0f ns/MB  %7.1f MB/s  (%d findings)",
		r.Name, r.LogMB, r.Records, r.P50Ns, r.NsPerMB, r.MBPerSec, r.Findings)
}

// RunAnalyzeBench synthesizes a sizeMB log under opt.OutDir and measures
// the full pilot-analyze pass and a self-diff over it (median of reps
// runs each). The verdict and diff are sanity-checked before their
// timings are reported: a fast pass that missed the log's planted
// imbalance, or a self-diff that found divergences, is a bug rather than
// a row.
func RunAnalyzeBench(opt Options, sizeMB, reps int) ([]AnalyzeRow, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	if sizeMB <= 0 {
		return nil, nil
	}
	if reps < 1 {
		reps = 5
	}
	path := filepath.Join(opt.OutDir, fmt.Sprintf("analyzebench-%dmb.clog2", sizeMB))
	opt.logf("AN synthesizing %d MB log at %s", sizeMB, path)
	if err := synthesizeIndexLog(path, sizeMB); err != nil {
		return nil, err
	}
	defer os.Remove(path)
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	logMB := float64(info.Size()) / (1 << 20)
	finish := func(name string, p50 float64, records int64, findings int) AnalyzeRow {
		return AnalyzeRow{
			Name:     name,
			LogMB:    logMB,
			Records:  records,
			P50Ns:    p50,
			NsPerMB:  p50 / logMB,
			MBPerSec: logMB / (p50 / 1e9),
			Findings: findings,
		}
	}
	var rows []AnalyzeRow

	// Row 1: the full verdict pass — scan, profile, every detector.
	var rep *analyze.Report
	p50, err := medianNs(reps, func() error {
		rep, err = analyze.AnalyzeFile(path, analyze.Options{})
		return err
	})
	if err != nil {
		return nil, err
	}
	if rep.Clean {
		return nil, fmt.Errorf("analyzebench: verdict clean on the send-only synthetic log (detectors did not run)")
	}
	row := finish("analyze_full_pass", p50, rep.Records, len(rep.Findings))
	rows = append(rows, row)
	opt.logf("AN %s", row)

	// Row 2: self-diff — two aligned scans plus the per-rank sequence
	// comparison, the `pilot-analyze -diff` cost model.
	var drep *analyze.DiffReport
	p50, err = medianNs(reps, func() error {
		drep, err = analyze.DiffFiles(path, path, analyze.DiffOptions{})
		return err
	})
	if err != nil {
		return nil, err
	}
	if !drep.Identical {
		return nil, fmt.Errorf("analyzebench: self-diff reported %d divergences", len(drep.Divergences))
	}
	row = finish("diff_self", p50, rep.Records, 0)
	rows = append(rows, row)
	opt.logf("AN %s", row)
	return rows, nil
}
