// The index-query harness behind `pilot-bench -overhead`: synthesize a
// large CLOG-2 log, index it, and measure seek-based windowed queries
// against the full streaming scan — the numbers behind the "index_query"
// section of BENCH_overhead.json. Every indexed answer is checked
// against the scan answer before its timing is reported: a speedup on a
// wrong answer is worthless.
package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/clog2"
	"repro/internal/idx"
	"repro/internal/stats"
)

// IndexQueryRow is one query's seek-vs-scan measurement on the
// synthesized log.
type IndexQueryRow struct {
	// Name identifies the query shape ("windowed_profile_1pct", ...).
	Name string `json:"name"`
	// LogMB/Blocks/Records describe the synthesized log.
	LogMB   float64 `json:"log_mb"`
	Blocks  int     `json:"blocks"`
	Records int64   `json:"records"`
	// BlocksVisited is how many blocks the index let the query touch.
	BlocksVisited int `json:"blocks_visited"`
	// ScanP50Ns and IndexedP50Ns are median wall times over the
	// repetitions; Speedup is their ratio.
	ScanP50Ns    float64 `json:"scan_p50_ns"`
	IndexedP50Ns float64 `json:"indexed_p50_ns"`
	Speedup      float64 `json:"speedup"`
}

// String renders the row for the pilot-bench console output.
func (r IndexQueryRow) String() string {
	return fmt.Sprintf("%-24s %7.1f MB %6d blocks  scan %12.0f ns  indexed %11.0f ns  (%d visited, %.1fx)",
		r.Name, r.LogMB, r.Blocks, r.ScanP50Ns, r.IndexedP50Ns, r.BlocksVisited, r.Speedup)
}

// synthesizeIndexLog writes a roughly sizeMB log: 16 ranks, one defs
// block, then round-robin per-rank blocks of state pairs and messages
// with globally increasing time — the shape of a long healthy run.
func synthesizeIndexLog(path string, sizeMB int) error {
	const (
		ranks       = 16
		perBlock    = 2048
		avgRecBytes = 20
	)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := clog2.NewWriter(f, ranks)
	if err != nil {
		return err
	}
	if err := w.WriteBlock(0, []clog2.Record{
		{Type: clog2.RecStateDef, ID: 1, Aux1: 2, Aux2: 3, Color: "green", Name: "PI_Write"},
		{Type: clog2.RecEventDef, ID: 7, Color: "white", Name: "Solo"},
	}); err != nil {
		return err
	}
	nblocks := int(int64(sizeMB) << 20 / avgRecBytes / perBlock)
	recs := make([]clog2.Record, perBlock)
	t := 0.0
	const dt = 1e-6
	for blk := 0; blk < nblocks; blk++ {
		rank := int32(blk % ranks)
		for i := 0; i < perBlock; i += 4 {
			t += dt
			recs[i] = clog2.Record{Type: clog2.RecBareEvt, Rank: rank, Time: t, ID: 2}
			t += dt
			recs[i+1] = clog2.Record{Type: clog2.RecMsgEvt, Rank: rank, Time: t,
				Dir: clog2.DirSend, Aux1: (rank + 1) % ranks, Aux2: rank % 8, Aux3: 256}
			t += dt
			recs[i+2] = clog2.Record{Type: clog2.RecBareEvt, Rank: rank, Time: t, ID: 3}
			t += dt
			recs[i+3] = clog2.Record{Type: clog2.RecBareEvt, Rank: rank, Time: t, ID: 7}
		}
		if err := w.WriteBlock(rank, recs); err != nil {
			return err
		}
	}
	return w.Close()
}

// medianNs times fn reps times and returns the median nanoseconds.
func medianNs(reps int, fn func() error) (float64, error) {
	times := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		times = append(times, float64(time.Since(start).Nanoseconds()))
	}
	sort.Float64s(times)
	return times[len(times)/2], nil
}

// countIndexed counts q-matching records touching only the selected
// blocks.
func countIndexed(path string, ix *idx.Index, sel []int, q idx.Query) (int64, error) {
	var n int64
	err := idx.ScanFile(path, ix, sel, func(b clog2.Block) error {
		for i := range b.Records {
			if q.Matches(&b.Records[i]) {
				n++
			}
		}
		return nil
	})
	return n, err
}

// countScanned counts q-matching records by streaming the whole file.
func countScanned(path string, q idx.Query) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	br, err := clog2.NewBlockReader(f)
	if err != nil {
		return 0, err
	}
	var n int64
	var buf []clog2.Record
	for {
		b, err := br.NextReuse(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
		for i := range b.Records {
			if q.Matches(&b.Records[i]) {
				n++
			}
		}
		buf = b.Records[:0]
	}
	return n, nil
}

// RunIndexQuery synthesizes a sizeMB log under opt.OutDir, indexes it,
// and measures the indexed vs full-scan cost of windowed-profile and
// filtered-search queries (median of reps runs each). Indexed answers
// are verified against the scan answers; a disagreement is an error,
// not a row.
func RunIndexQuery(opt Options, sizeMB, reps int) ([]IndexQueryRow, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	if sizeMB <= 0 {
		return nil, nil
	}
	if reps < 1 {
		reps = 5
	}
	path := filepath.Join(opt.OutDir, fmt.Sprintf("indexbench-%dmb.clog2", sizeMB))
	opt.logf("IQ synthesizing %d MB log at %s", sizeMB, path)
	if err := synthesizeIndexLog(path, sizeMB); err != nil {
		return nil, err
	}
	defer os.Remove(path)
	defer os.Remove(idx.SidecarPath(path))
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	ix, err := idx.BuildFile(path)
	if err != nil {
		return nil, err
	}
	if err := idx.WriteFileFor(path, ix); err != nil {
		return nil, err
	}
	base := IndexQueryRow{
		LogMB:   float64(info.Size()) / (1 << 20),
		Blocks:  len(ix.Blocks),
		Records: ix.TotalRecords,
	}

	// The whole-file event time span, from the fences.
	tmin, tmax := math.Inf(1), math.Inf(-1)
	for i := range ix.Blocks {
		b := &ix.Blocks[i]
		if b.Records <= b.Defs {
			continue
		}
		tmin = math.Min(tmin, b.TMin)
		tmax = math.Max(tmax, b.TMax)
	}
	span := tmax - tmin
	t0 := tmin + 0.495*span
	t1 := tmin + 0.505*span
	var rows []IndexQueryRow

	// Query 1: a windowed profile over 1% of the run, mid-file.
	{
		q := idx.MatchAll()
		q.T0, q.T1, q.IncludeDefs = t0, t1, true
		row := base
		row.Name = "windowed_profile_1pct"
		row.BlocksVisited = len(ix.Select(q))
		var indexed, scanned *stats.Profile
		row.IndexedP50Ns, err = medianNs(reps, func() error {
			indexed, err = stats.ComputeProfileIndexed(path, ix, t0, t1)
			return err
		})
		if err != nil {
			return nil, err
		}
		row.ScanP50Ns, err = medianNs(reps, func() error {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			defer f.Close()
			scanned, err = stats.ComputeProfileWindowed(f, t0, t1)
			return err
		})
		if err != nil {
			return nil, err
		}
		a, _ := indexed.JSON()
		b, _ := scanned.JSON()
		if string(a) != string(b) {
			return nil, fmt.Errorf("indexbench: windowed profile disagrees between index and scan")
		}
		row.Speedup = row.ScanP50Ns / row.IndexedP50Ns
		rows = append(rows, row)
		opt.logf("IQ %s", row)
	}

	// Queries 2 and 3: filtered record counting, the clogdump/search
	// shape — one channel inside the window, one rank over the full span.
	searches := []struct {
		name string
		mod  func(*idx.Query)
	}{
		{"channel_search_1pct", func(q *idx.Query) { q.T0, q.T1, q.Chan = t0, t1, 3 }},
		{"rank_slice_full_span", func(q *idx.Query) { q.Rank = 5 }},
	}
	for _, sc := range searches {
		q := idx.MatchAll()
		sc.mod(&q)
		row := base
		row.Name = sc.name
		sel := ix.Select(q)
		row.BlocksVisited = len(sel)
		var nIndexed, nScanned int64
		row.IndexedP50Ns, err = medianNs(reps, func() error {
			nIndexed, err = countIndexed(path, ix, sel, q)
			return err
		})
		if err != nil {
			return nil, err
		}
		row.ScanP50Ns, err = medianNs(reps, func() error {
			nScanned, err = countScanned(path, q)
			return err
		})
		if err != nil {
			return nil, err
		}
		if nIndexed != nScanned {
			return nil, fmt.Errorf("indexbench: %s found %d indexed vs %d scanned", sc.name, nIndexed, nScanned)
		}
		row.Speedup = row.ScanP50Ns / row.IndexedP50Ns
		rows = append(rows, row)
		opt.logf("IQ %s", row)
	}
	return rows, nil
}
