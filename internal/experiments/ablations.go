package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/slog2"
	"repro/vis"
)

// A1Result reports the arrow-spread ablation (Section III.C): without the
// usleep workaround, collective fan-outs under a coarse clock superimpose
// drawables and the converter raises "Equal Drawables"; 1 ms of spread
// per arrow eliminates the warning at negligible runtime cost.
type A1Result struct {
	EqualDrawablesNoSpread int
	EqualDrawablesSpread   int
	RuntimeNoSpread        time.Duration
	RuntimeSpread          time.Duration
}

// RunA1 performs the ablation: a broadcast/gather round over 6 workers
// with 1 ms clock resolution, spread off versus on.
func RunA1(opt Options) (*A1Result, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	run := func(spread time.Duration, clogName string) (int, time.Duration, error) {
		const workers = 6
		clogPath := filepath.Join(opt.OutDir, clogName)
		base := clock.NewReal()
		clocks := make([]clock.Source, workers+1)
		for i := range clocks {
			// 100 µs resolution: coarse like an old MPI_Wtime, but finer
			// than the 1 ms spread so the workaround can take effect.
			clocks[i] = clock.NewMonotonic(clock.NewSkewed(base, 0, 0, 1e-4))
		}
		cfg := core.Config{
			NumProcs:     workers + 1,
			Services:     "j",
			CheckLevel:   3,
			JumpshotPath: clogPath,
			ArrowSpread:  spread,
			Clocks:       clocks,
		}
		r, err := core.NewRuntime(cfg)
		if err != nil {
			return 0, 0, err
		}
		to := make([]*core.Channel, workers)
		from := make([]*core.Channel, workers)
		worker := func(self *core.Self, index int, arg any) int {
			var rounds int
			if err := to[index].Read("%d", &rounds); err != nil {
				return 1
			}
			for k := 0; k < rounds; k++ {
				var v int
				if err := to[index].Read("%d", &v); err != nil {
					return 1
				}
				if err := from[index].Write("%*d", 1, []int{v * 2}); err != nil {
					return 1
				}
			}
			return 0
		}
		for i := 0; i < workers; i++ {
			p, err := r.CreateProcess(worker, i, nil)
			if err != nil {
				return 0, 0, err
			}
			if to[i], err = r.CreateChannel(r.MainProc(), p); err != nil {
				return 0, 0, err
			}
			if from[i], err = r.CreateChannel(p, r.MainProc()); err != nil {
				return 0, 0, err
			}
		}
		bcast, err := r.CreateBundle(core.UsageBroadcast, to...)
		if err != nil {
			return 0, 0, err
		}
		gather, err := r.CreateBundle(core.UsageGather, from...)
		if err != nil {
			return 0, 0, err
		}
		if _, err := r.StartAll(); err != nil {
			return 0, 0, err
		}
		start := time.Now()
		const rounds = 5
		if err := bcast.Broadcast("%d", rounds); err != nil {
			return 0, 0, err
		}
		buf := make([]int, workers)
		for k := 0; k < rounds; k++ {
			if err := bcast.Broadcast("%d", k); err != nil {
				return 0, 0, err
			}
			if err := gather.Gather("%*d", workers, buf); err != nil {
				return 0, 0, err
			}
		}
		if err := r.StopMain(0); err != nil {
			return 0, 0, err
		}
		elapsed := time.Since(start) - r.WrapUpTime()
		_, rep, err := vis.ConvertFile(clogPath, opt.convertOpts(0))
		if err != nil {
			return 0, 0, err
		}
		return rep.EqualDrawables, elapsed, nil
	}

	out := &A1Result{}
	if out.EqualDrawablesNoSpread, out.RuntimeNoSpread, err = run(-1, "a1-nospread.clog2"); err != nil {
		return nil, err
	}
	if out.EqualDrawablesSpread, out.RuntimeSpread, err = run(core.DefaultArrowSpread, "a1-spread.clog2"); err != nil {
		return nil, err
	}
	opt.logf("A1 equal-drawables: no-spread=%d spread=%d; runtime %v vs %v",
		out.EqualDrawablesNoSpread, out.EqualDrawablesSpread,
		out.RuntimeNoSpread, out.RuntimeSpread)
	return out, nil
}

// A2Row is one frame-size cell of the conversion ablation.
type A2Row struct {
	FrameCapacity int
	TreeDepth     int
	// MaxFrameDrawables bounds how much a viewer loads per frame — the
	// "amount of data initially displayed" the paper attributes to the
	// frame-size parameter.
	MaxFrameDrawables int
	// QueryMicros is the time to fetch a 10% viewport.
	QueryMicros float64
}

// RunA2 converts one thumbnail log at several frame capacities and
// reports how the parameter shapes the tree.
func RunA2(opt Options, f1 *F1Result) ([]A2Row, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	if f1 == nil {
		if f1, err = RunF1(opt); err != nil {
			return nil, err
		}
	}
	var rows []A2Row
	for _, capacity := range []int{16, 64, 256, 1024, 4096} {
		f, _, err := vis.ConvertFile(f1.CLOGPath, opt.convertOpts(capacity))
		if err != nil {
			return nil, err
		}
		maxDrawables := 0
		f.Walk(func(fr *slog2.Frame) {
			if n := len(fr.States) + len(fr.Arrows) + len(fr.Events); n > maxDrawables {
				maxDrawables = n
			}
		})
		span := f.End - f.Start
		t0 := f.Start + span*0.45
		t1 := f.Start + span*0.55
		const reps = 50
		start := time.Now()
		for i := 0; i < reps; i++ {
			f.Query(t0, t1)
		}
		rows = append(rows, A2Row{
			FrameCapacity:     capacity,
			TreeDepth:         f.Depth(),
			MaxFrameDrawables: maxDrawables,
			QueryMicros:       float64(time.Since(start).Microseconds()) / reps,
		})
		opt.logf("A2 capacity=%4d depth=%2d max-frame=%5d query=%.1fus",
			capacity, f.Depth(), maxDrawables, rows[len(rows)-1].QueryMicros)
	}
	return rows, nil
}

// A3Result reports the abort experiment (Section III.B): PI_Abort loses
// the MPE log, while the native log — streamed to disk entry by entry —
// survives. The RobustLog fields cover the paper's future work, which
// this reproduction implements: with spilling enabled the visual log is
// salvaged and stays usable.
type A3Result struct {
	MPELogExists    bool // must be false (faithful mode)
	NativeLogExists bool // must be true
	NativeLogBytes  int
	// SalvagedLogUsable reports that, with Config.RobustLog, the same
	// aborting program leaves a convertible CLOG-2 behind.
	SalvagedLogUsable bool
	SalvagedStates    int
}

// runA3Program executes the aborting program once and returns the
// runtime error from StopMain (which must be non-nil).
func runA3Program(clogPath, nativePath string, robust bool) error {
	cfg := core.Config{
		NumProcs:     4,
		Services:     "cj",
		CheckLevel:   3,
		JumpshotPath: clogPath,
		NativePath:   nativePath,
		RobustLog:    robust,
		Stderr:       discard{},
	}
	r, err := core.NewRuntime(cfg)
	if err != nil {
		return err
	}
	var ch *core.Channel
	p, err := r.CreateProcess(func(self *core.Self, index int, arg any) int {
		var v int
		if err := ch.Read("%d", &v); err != nil {
			return 1
		}
		self.Log("about to detect a fatal problem")
		time.Sleep(20 * time.Millisecond) // let the log line reach the service process
		self.Abort(7, "fatal problem detected by one process")
		return 1
	}, 0, nil)
	if err != nil {
		return err
	}
	if ch, err = r.CreateChannel(r.MainProc(), p); err != nil {
		return err
	}
	if _, err := r.StartAll(); err != nil {
		return err
	}
	if err := ch.Write("%d", 1); err != nil {
		return err
	}
	if err := r.StopMain(0); err == nil {
		return fmt.Errorf("a3: aborted run finished cleanly")
	}
	return nil
}

// RunA3 runs a program that aborts mid-flight with both logs enabled,
// first faithfully (log lost), then with RobustLog (log salvaged).
func RunA3(opt Options) (*A3Result, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	clogPath := filepath.Join(opt.OutDir, "a3.clog2")
	nativePath := filepath.Join(opt.OutDir, "a3.native.log")
	os.Remove(clogPath)
	os.Remove(nativePath)
	if err := runA3Program(clogPath, nativePath, false); err != nil {
		return nil, err
	}
	out := &A3Result{}
	if _, err := os.Stat(clogPath); err == nil {
		out.MPELogExists = true
	}
	if st, err := os.Stat(nativePath); err == nil {
		out.NativeLogExists = true
		out.NativeLogBytes = int(st.Size())
	}

	// Future work, implemented: same program, RobustLog on.
	robustPath := filepath.Join(opt.OutDir, "a3-robust.clog2")
	os.Remove(robustPath)
	if err := runA3Program(robustPath, nativePath+".robust", true); err != nil {
		return nil, err
	}
	if f, _, err := vis.ConvertFile(robustPath, opt.convertOpts(0)); err == nil {
		out.SalvagedLogUsable = true
		s, _, _ := f.All()
		out.SalvagedStates = len(s)
	}
	opt.logf("A3 mpe-log-exists=%v (paper: lost) native-log-exists=%v (%d bytes, survives); robust-log salvaged=%v (%d states)",
		out.MPELogExists, out.NativeLogExists, out.NativeLogBytes,
		out.SalvagedLogUsable, out.SalvagedStates)
	return out, nil
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
