package experiments

import (
	"path/filepath"
	"testing"
)

func overheadFixture(stateNs, pingNs float64) *OverheadReport {
	return &OverheadReport{
		GoVersion: "go1.x", GOOS: "linux", GOARCH: "amd64", CPUs: 1,
		Micro: []OverheadRow{
			{Name: "mpe/state_start_end", Logging: "on", CallsPerOp: 2, NsPerOp: stateNs},
			{Name: "mpe/state_start_end", Logging: "off", CallsPerOp: 2, NsPerOp: 2.1},
		},
		Workload: []OverheadRow{
			{Name: "pingpong", Logging: "on", Ranks: 4, Messages: 500, CallsPerOp: 8000, NsPerOp: pingNs},
		},
	}
}

func TestCompareOverheadGatesMicroRows(t *testing.T) {
	base := overheadFixture(100, 1000)

	// Within tolerance: no failure.
	deltas, regressed := CompareOverhead(base, overheadFixture(115, 1150), 20)
	if regressed {
		t.Errorf("15%% drift regressed: %v", deltas)
	}
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3", len(deltas))
	}

	// A micro row past tolerance fails.
	_, regressed = CompareOverhead(base, overheadFixture(130, 1000), 20)
	if !regressed {
		t.Error("30% micro regression not flagged")
	}

	// The same drift on a workload row is informational only.
	deltas, regressed = CompareOverhead(base, overheadFixture(100, 2000), 20)
	if regressed {
		t.Error("workload drift gated the comparison")
	}
	var sawWorkload bool
	for _, d := range deltas {
		if d.Name == "pingpong" {
			sawWorkload = true
			if d.Gated || d.Regressed {
				t.Errorf("workload delta gated: %+v", d)
			}
		}
	}
	if !sawWorkload {
		t.Error("workload delta missing from comparison")
	}

	// Getting faster never fails.
	if _, regressed = CompareOverhead(base, overheadFixture(40, 400), 20); regressed {
		t.Error("improvement flagged as regression")
	}

	// A sub-noise-floor delta never fails, however large in percent: a
	// 50ns row drifting to 65ns is +30% but only +15ns — CPU frequency
	// jitter on a shared machine, not a regression.
	small := overheadFixture(50, 1000)
	if _, regressed = CompareOverhead(small, overheadFixture(65, 1000), 20); regressed {
		t.Error("15ns drift on a 50ns row flagged as regression")
	}
	// Past tolerance and past the floor still fails (50 -> 80: +60%, +30ns).
	if _, regressed = CompareOverhead(small, overheadFixture(80, 1000), 20); !regressed {
		t.Error("30ns regression on a 50ns row not flagged")
	}
}

func TestCompareOverheadSkipsUnmatchedRows(t *testing.T) {
	base := overheadFixture(100, 1000)
	fresh := overheadFixture(100, 1000)
	fresh.Micro = fresh.Micro[:1] // "off" row missing from the fresh run
	deltas, regressed := CompareOverhead(base, fresh, 20)
	if regressed {
		t.Error("missing row treated as regression")
	}
	for _, d := range deltas {
		if d.Logging == "off" && d.Name == "mpe/state_start_end" {
			t.Errorf("unmatched row compared: %+v", d)
		}
	}
}

func TestOverheadReportJSONRoundTrip(t *testing.T) {
	rep := overheadFixture(123.4, 987.6)
	rep.Micro[0].PrePRNsPerOp = 182.1
	rep.Micro[0].ImprovementPct = 32.2
	path := filepath.Join(t.TempDir(), "BENCH_overhead.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadOverheadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Micro) != len(rep.Micro) || len(got.Workload) != len(rep.Workload) {
		t.Fatalf("round trip lost rows: %+v", got)
	}
	if got.Micro[0] != rep.Micro[0] || got.Workload[0] != rep.Workload[0] {
		t.Errorf("round trip changed rows:\n got %+v\nwant %+v", got.Micro[0], rep.Micro[0])
	}
	if got.Micro[0].PrePRNsPerOp != 182.1 {
		t.Errorf("pre-PR baseline lost: %+v", got.Micro[0])
	}
}
