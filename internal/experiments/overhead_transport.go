// Transport ping-pong cells for the overhead harness: raw 64-byte round
// trips timed per rank substrate, so BENCH_overhead.json shows what the
// multi-process socket wire costs next to the in-process baseline. The
// world is set up once per transport — process spawn is not what the row
// measures — and each benchmark op is one round trip (two Pilot-level
// calls at rank 0).
package experiments

import (
	"testing"

	"repro/internal/mpi"
)

// Tags of the ping-pong protocol: rank 1 echoes every ping payload back
// until the stop tag arrives.
const (
	transportPingTag = 1
	transportStopTag = 2
)

// transportEcho is the rank-1 half: echo until told to stop.
func transportEcho(r *mpi.Rank) error {
	for {
		m, err := r.Recv(0, mpi.AnyTag)
		if err != nil {
			return err
		}
		if m.Tag == transportStopTag {
			return nil
		}
		if err := r.Send(0, transportPingTag, m.Data); err != nil {
			return err
		}
	}
}

// TransportPingPongChild is the spawned-rank entry point for the
// multi-process transport cells. A host binary (pilot-bench, or a test
// binary pointing SpawnCommand at a hook test) checks mpi.Spawned()
// first thing and calls this instead of orchestrating: the process joins
// the world named by the PILOT_MPI_* environment as rank 1, echoes until
// the stop tag, and says a clean goodbye.
func TransportPingPongChild() error {
	w, err := mpi.Start(2, mpi.Options{Transport: mpi.SpawnedTransport()})
	if err != nil {
		return err
	}
	if err := w.Run(transportEcho)[w.LocalRank()]; err != nil {
		w.Shutdown()
		return err
	}
	return w.Shutdown()
}

// benchTransportPingPong times round trips over one transport. For the
// in-process transport rank 1 is a goroutine of this process; for the
// socket and TCP transports it is a spawned OS process running
// TransportPingPongChild, launched via spawnCmd (nil = re-execute the
// host binary).
func benchTransportPingPong(transport string, spawnCmd []string) (testing.BenchmarkResult, error) {
	opts := mpi.Options{Transport: transport}
	if transport != "" && transport != mpi.TransportInproc {
		opts.SpawnCommand = spawnCmd
	}
	w, err := mpi.Start(2, opts)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	var res testing.BenchmarkResult
	var benchErr error
	errs := w.Run(func(r *mpi.Rank) error {
		if r.ID() != 0 {
			return transportEcho(r) // present only under the in-process transport
		}
		payload := make([]byte, 64)
		res = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := r.Send(1, transportPingTag, payload); err != nil {
					benchErr = err
					b.FailNow()
				}
				if _, err := r.Recv(1, transportPingTag); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		return r.Send(1, transportStopTag, nil)
	})
	if benchErr == nil {
		for _, err := range errs {
			if err != nil {
				benchErr = err
				break
			}
		}
	}
	if err := w.Shutdown(); err != nil && benchErr == nil {
		benchErr = err
	}
	return res, benchErr
}
