package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/collisions"
	"repro/internal/lab2"
	"repro/internal/thumbnail"
	"repro/vis"
)

// F1Result reports the Fig. 1 regeneration: the full thumbnail timeline.
type F1Result struct {
	// SVGPath is the rendered figure.
	SVGPath string
	// CLOGPath/SLOGPath are the underlying logs (inputs for F2 and A2).
	CLOGPath, SLOGPath string
	// States/Arrows/Events count the drawables ("thousands of Pilot
	// functions").
	States, Arrows, Events int
	// ConversionErrors must be zero: the paper's robustness claim is that
	// the SLOG-2 "can be successfully read ... without any conversion
	// errors".
	ConversionErrors int
	// Ranks is the timeline count (paper: 11 — PI_MAIN + C + 9 Ds).
	Ranks int
	File  *vis.File
}

// RunF1 regenerates Fig. 1: the thumbnail application with PI_MAIN plus
// 10 work processes (compressor + 9 decompressors), MPE logging on, full
// timeline rendered.
func RunF1(opt Options) (*F1Result, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	clog := filepath.Join(opt.OutDir, "fig1.clog2")
	cfg := opt.thumbCfg(10, "mpe", 3, clog) // 10 work procs: C + 9 Ds
	res, err := thumbnail.Run(cfg)
	if err != nil {
		return nil, err
	}
	if res.Thumbnails != opt.Images {
		return nil, fmt.Errorf("f1: %d thumbnails, want %d", res.Thumbnails, opt.Images)
	}
	slog := filepath.Join(opt.OutDir, "fig1.slog2")
	svg := filepath.Join(opt.OutDir, "fig1.svg")
	f, rep, err := vis.Pipeline(clog, slog, svg, opt.convertOpts(0),
		vis.View{Title: "Fig. 1: thumbnail application, full timeline"})
	if err != nil {
		return nil, err
	}
	// Side outputs: the interactive viewer and the load-balance chart
	// ("easy detection of load imbalance across processes").
	if err := vis.RenderHTMLFile(filepath.Join(opt.OutDir, "fig1.html"), f,
		vis.View{Title: "thumbnail application (interactive)"}); err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(opt.OutDir, "fig1-stats.svg"),
		[]byte(vis.RenderStatsSVG(f, f.Start, f.End, "thumbnail: per-process load")), 0o644); err != nil {
		return nil, err
	}
	out := &F1Result{
		SVGPath: svg, CLOGPath: clog, SLOGPath: slog,
		States: rep.States, Arrows: rep.Arrows, Events: rep.Events,
		ConversionErrors: rep.NestingErrors + rep.UnmatchedSends + rep.UnmatchedRecvs,
		Ranks:            f.NumRanks,
		File:             f,
	}
	opt.logf("F1 states=%d arrows=%d events=%d conversion-errors=%d ranks=%d -> %s",
		out.States, out.Arrows, out.Events, out.ConversionErrors, out.Ranks, svg)
	return out, nil
}

// F2Result reports the Fig. 2 regeneration: the zoomed view where gray
// Compute dominates and red/green I/O is tiny.
type F2Result struct {
	SVGPath string
	// Window is the zoom viewport.
	Window [2]float64
	// ComputeFraction is the share of state time that is Compute within
	// the window (paper: "most of the execution time is used for
	// computation").
	ComputeFraction float64
	// IOFraction is the PI_Read + PI_Write share ("tiny in comparison").
	IOFraction float64
}

// RunF2 regenerates Fig. 2 by zooming into the middle of an F1 run.
func RunF2(opt Options, f1 *F1Result) (*F2Result, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	if f1 == nil {
		if f1, err = RunF1(opt); err != nil {
			return nil, err
		}
	}
	f := f1.File
	span := f.End - f.Start
	t0 := f.Start + span*0.45
	t1 := f.Start + span*0.55
	svg := filepath.Join(opt.OutDir, "fig2.svg")
	if err := vis.RenderSVGFile(svg, f, vis.View{From: t0, To: t1,
		Title: "Fig. 2: thumbnail application, zoomed in"}); err != nil {
		return nil, err
	}
	out := &F2Result{
		SVGPath:         svg,
		Window:          [2]float64{t0, t1},
		ComputeFraction: vis.CategoryFraction(f, "Compute", t0, t1),
		IOFraction: vis.CategoryFraction(f, "PI_Read", t0, t1) +
			vis.CategoryFraction(f, "PI_Write", t0, t1),
	}
	opt.logf("F2 window=[%.4f,%.4f] compute=%.1f%% io=%.1f%% -> %s",
		t0, t1, out.ComputeFraction*100, out.IOFraction*100, svg)
	return out, nil
}

// F3Result reports the Fig. 3 regeneration: the lab2 visual log.
type F3Result struct {
	SVGPath string
	// Timelines, Reads, Writes, Arrows are the structural counts: 6
	// processes, 15 reads, 15 writes, 15 arrows for W=5.
	Timelines, Reads, Writes, Arrows int
	// ElapsedMS is the total execution time in milliseconds (paper:
	// "total execution time is under 3 ms").
	ElapsedMS float64
	// SequencesOK reports that every worker shows the red, red, green
	// call pattern of Fig. 3.
	SequencesOK bool
}

// RunF3 regenerates Fig. 3: lab2 with six processes.
func RunF3(opt Options) (*F3Result, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	clog := filepath.Join(opt.OutDir, "fig3.clog2")
	cfg := lab2.Config{W: 5, NUM: 10000, Seed: 1}
	cfg.Core.Services = "j"
	cfg.Core.CheckLevel = 3
	cfg.Core.JumpshotPath = clog
	cfg.Core.Faults = opt.Faults
	cfg.Core.Metrics = opt.Metrics
	res, err := lab2.Run(cfg)
	if err != nil {
		return nil, err
	}
	svg := filepath.Join(opt.OutDir, "fig3.svg")
	f, rep, err := vis.Pipeline(clog, filepath.Join(opt.OutDir, "fig3.slog2"), svg,
		opt.convertOpts(0), vis.View{Title: "Fig. 3: lab2 visual log"})
	if err != nil {
		return nil, err
	}
	if n := rep.NestingErrors + rep.UnmatchedSends + rep.UnmatchedRecvs; n != 0 {
		return nil, fmt.Errorf("f3: %d conversion errors", n)
	}
	legend := vis.Legend(f, f.Start, f.End)
	out := &F3Result{SVGPath: svg, ElapsedMS: float64(res.Elapsed.Microseconds()) / 1000}
	for _, e := range legend {
		switch e.Name {
		case "Compute":
			out.Timelines = e.Count
		case "PI_Read":
			out.Reads = e.Count
		case "PI_Write":
			out.Writes = e.Count
		}
	}
	out.Arrows = len(vis.Search(f, vis.SearchOptions{Name: "arrow", Rank: -1}))
	out.SequencesOK = true
	for w := 1; w <= 5; w++ {
		var seq []string
		for _, h := range vis.Search(f, vis.SearchOptions{Rank: w}) {
			if h.Name == "PI_Read" || h.Name == "PI_Write" {
				seq = append(seq, h.Name)
			}
		}
		if len(seq) != 3 || seq[0] != "PI_Read" || seq[1] != "PI_Read" || seq[2] != "PI_Write" {
			out.SequencesOK = false
		}
	}
	opt.logf("F3 timelines=%d reads=%d writes=%d arrows=%d elapsed=%.3fms sequences-ok=%v -> %s",
		out.Timelines, out.Reads, out.Writes, out.Arrows, out.ElapsedMS, out.SequencesOK, svg)
	return out, nil
}

// F4Result reports the Fig. 4 regeneration: student instance A.
type F4Result struct {
	SVGPath string
	// OverlapFixed and OverlapA are the query-phase busy-overlap ratios
	// of the intended program and instance A; the bug shows as
	// OverlapA ≈ 0 ("the workers never did query processing in parallel
	// at all").
	OverlapFixed, OverlapA float64
	// ElapsedFixed/ElapsedA compare total runtimes (the symptom: "failing
	// to exhibit any speedup").
	ElapsedFixedSec, ElapsedASec float64
}

// RunF4 regenerates Fig. 4: instance A versus the fixed program.
func RunF4(opt Options) (*F4Result, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	const workers = 4
	mk := func(name string) collisions.Config {
		c := collisions.Config{Workers: workers, Rows: opt.Rows, Seed: 7,
			QueryCost: 50, QuerySleepPerRow: 10 * time.Microsecond,
			ReadSleepPerRow: 2 * time.Microsecond}
		c.Core.Services = "j"
		c.Core.CheckLevel = 3
		c.Core.JumpshotPath = filepath.Join(opt.OutDir, name)
		return c
	}
	cfgF := mk("fig4-fixed.clog2")
	resF, err := collisions.RunFixed(cfgF)
	if err != nil {
		return nil, err
	}
	fF, _, err := vis.ConvertFile(cfgF.Core.JumpshotPath, opt.convertOpts(0))
	if err != nil {
		return nil, err
	}
	cfgA := mk("fig4-instA.clog2")
	resA, err := collisions.RunInstanceA(cfgA)
	if err != nil {
		return nil, err
	}
	svg := filepath.Join(opt.OutDir, "fig4.svg")
	fA, _, err := vis.Pipeline(cfgA.Core.JumpshotPath, "", svg, opt.convertOpts(0),
		vis.View{Title: "Fig. 4: instance A (serialized queries)"})
	if err != nil {
		return nil, err
	}
	ranks := make([]int, workers)
	for i := range ranks {
		ranks[i] = i + 1
	}
	queryWindow := func(f *vis.File, res *collisions.Result) (float64, float64) {
		total := res.ReadPhase + res.QueryPhase
		t0 := f.Start + (f.End-f.Start)*float64(res.ReadPhase)/float64(total)
		return t0, f.End
	}
	t0F, t1F := queryWindow(fF, resF)
	t0A, t1A := queryWindow(fA, resA)
	out := &F4Result{
		SVGPath:         svg,
		OverlapFixed:    vis.BusyOverlapRatio(fF, ranks, t0F, t1F),
		OverlapA:        vis.BusyOverlapRatio(fA, ranks, t0A, t1A),
		ElapsedFixedSec: resF.Elapsed.Seconds(),
		ElapsedASec:     resA.Elapsed.Seconds(),
	}
	opt.logf("F4 overlap fixed=%.3f instA=%.3f elapsed fixed=%.3fs instA=%.3fs -> %s",
		out.OverlapFixed, out.OverlapA, out.ElapsedFixedSec, out.ElapsedASec, svg)
	return out, nil
}

// F5Result reports the Fig. 5 regeneration: student instance B.
type F5Result struct {
	SVGPath string
	// ElapsedByWorkers maps worker count to total runtime: nearly flat
	// ("the total run time always stayed nearly the same").
	ElapsedByWorkers map[int]float64
	// ReadShare is the fraction of instance B's run spent in the
	// sequential read phase ("workers were kept waiting till PI_MAIN did
	// 11 seconds of initialization").
	ReadShare float64
	// FixedSpeedup is the fixed program's 2→8 worker speedup on the same
	// dataset, the contrast that makes B's flatness damning.
	FixedSpeedup float64
}

// RunF5 regenerates Fig. 5: instance B at several worker counts.
func RunF5(opt Options) (*F5Result, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	f5cfg := func(w int) collisions.Config {
		return collisions.Config{Workers: w, Rows: opt.Rows, Seed: 7,
			QueryCost: 10, QuerySleepPerRow: 500 * time.Nanosecond,
			ReadSleepPerRow: 5 * time.Microsecond}
	}
	out := &F5Result{ElapsedByWorkers: map[int]float64{}}
	for _, w := range []int{2, 4, 8} {
		cfg := f5cfg(w)
		res, err := collisions.RunInstanceB(cfg)
		if err != nil {
			return nil, err
		}
		out.ElapsedByWorkers[w] = res.Elapsed.Seconds()
		if w == 4 {
			out.ReadShare = float64(res.ReadPhase) / float64(res.ReadPhase+res.QueryPhase)
		}
	}
	// The figure itself, from a logged 4-worker run.
	cfg := f5cfg(4)
	cfg.Core.Services = "j"
	cfg.Core.JumpshotPath = filepath.Join(opt.OutDir, "fig5.clog2")
	if _, err := collisions.RunInstanceB(cfg); err != nil {
		return nil, err
	}
	svg := filepath.Join(opt.OutDir, "fig5.svg")
	if _, _, err := vis.Pipeline(cfg.Core.JumpshotPath, "", svg, opt.convertOpts(0),
		vis.View{Title: "Fig. 5: instance B (sequential initialization)"}); err != nil {
		return nil, err
	}
	out.SVGPath = svg
	// Contrast: the fixed program speeds up on the same dataset.
	var fixedTimes []float64
	for _, w := range []int{2, 8} {
		cfg := f5cfg(w)
		res, err := collisions.RunFixed(cfg)
		if err != nil {
			return nil, err
		}
		fixedTimes = append(fixedTimes, res.Elapsed.Seconds())
	}
	out.FixedSpeedup = fixedTimes[0] / fixedTimes[1]
	opt.logf("F5 instB elapsed w2=%.3fs w4=%.3fs w8=%.3fs read-share=%.0f%% fixed 2->8 speedup=%.2fx -> %s",
		out.ElapsedByWorkers[2], out.ElapsedByWorkers[4], out.ElapsedByWorkers[8],
		out.ReadShare*100, out.FixedSpeedup, svg)
	return out, nil
}
