package experiments

import (
	"os"
	"testing"

	"repro/internal/mpi"
)

// TestTransportPingPongChildHook hosts the spawned rank of the socket
// transport bench: inert under a normal `go test`, it becomes the echo
// rank when launched with the PILOT_MPI_* join environment — the same
// TransportPingPongChild entry pilot-bench routes spawned invocations to.
func TestTransportPingPongChildHook(t *testing.T) {
	if !mpi.Spawned() {
		t.Skip("spawned rank body; run via TestBenchTransportPingPong")
	}
	if err := TransportPingPongChild(); err != nil {
		t.Fatalf("spawned echo rank: %v", err)
	}
}

// TestBenchTransportPingPong runs one in-process row and one socket row
// (the latter spawning this test binary as rank 1) and checks both
// produce a usable measurement with distinct comparison keys.
func TestBenchTransportPingPong(t *testing.T) {
	if testing.Short() {
		t.Skip("runs benchmarks and spawns a rank process; skipped in -short")
	}
	spawnCmd := []string{os.Args[0], "-test.run=^TestTransportPingPongChildHook$"}
	for _, tr := range []string{mpi.TransportInproc, mpi.TransportSocket} {
		res, err := benchTransportPingPong(tr, spawnCmd)
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		row := finishRow(OverheadRow{
			Name: "transport_pingpong", Logging: "off", Transport: tr,
			Ranks: 2, CallsPerOp: 2,
		}, res)
		if res.N <= 0 || row.NsPerOp <= 0 {
			t.Errorf("%s: empty measurement: N=%d row=%+v", tr, res.N, row)
		}
		if want := "transport_pingpong|off|" + tr; row.key() != want {
			t.Errorf("key %q, want %q", row.key(), want)
		}
	}
}
