// Package experiments regenerates every table and figure in the paper's
// evaluation: the Section III.E overhead table (T1), the five figures
// (F1–F5), and ablations for the design choices the paper calls out (A1
// arrow spread vs Equal Drawables, A2 conversion frame size, A3 log
// survival across PI_Abort). cmd/pilot-bench prints the rows; the
// repository-root benchmarks wrap the same entry points.
package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/thumbnail"
	"repro/vis"
)

// Options scales the experiments. The defaults run the whole suite on a
// laptop in tens of seconds; the paper's full-size parameters (1058
// images, 316 MB of CSV) are reachable by raising them.
type Options struct {
	// OutDir receives figure SVGs and logfiles ("" = temp dir, discarded).
	OutDir string
	// Runs is the repetition count for timed rows (paper: 10).
	Runs int
	// Images is the thumbnail batch size (paper: 1058).
	Images int
	// ImageW/ImageH size the synthetic images.
	ImageW, ImageH int
	// Rows is the collision dataset size.
	Rows int
	// StageDelay is the per-image think time of the pipeline stages.
	// Real DCT work alone cannot exhibit wall-clock speedup on a machine
	// with fewer cores than the paper's cluster nodes, so the scaling
	// rows model stage cost as think time on top of the real codec work
	// (documented as a substitution in DESIGN.md). Default 8 ms.
	StageDelay time.Duration
	// Workers sizes the CLOG-2 → SLOG-2 conversion worker pool
	// (0 = one per CPU); results are byte-identical at any setting.
	Workers int
	// Faults optionally installs a deterministic fault-injection plan
	// into every workload run (pilot-bench's -faults flag; see
	// mpi.ParseFaultPlan for the spec grammar).
	Faults *mpi.FaultPlan
	// Metrics enables the live stats collector in every workload run
	// (pilot-bench's -metrics-addr flag serves the collected numbers).
	Metrics bool
	// Transports lists the rank substrates the overhead harness times
	// raw ping-pong rows on ("inproc", "socket", "tcp"; pilot-bench's
	// -transport flag). Empty runs no transport rows: the multi-process
	// ones spawn rank processes by re-executing the host binary, which
	// must route spawned invocations to TransportPingPongChild.
	Transports []string
	// SpawnCommand overrides the child command for multi-process
	// transport rows (nil = re-execute the host binary with its own
	// arguments).
	SpawnCommand []string
	// Log receives progress lines (nil = silent).
	Log io.Writer
}

// convertOpts builds the conversion options every experiment uses.
func (o Options) convertOpts(frameCapacity int) vis.ConvertOptions {
	return vis.ConvertOptions{FrameCapacity: frameCapacity, Workers: o.Workers}
}

func (o Options) withDefaults() (Options, error) {
	if o.Runs <= 0 {
		o.Runs = 5
	}
	if o.Images <= 0 {
		o.Images = 120
	}
	if o.ImageW == 0 {
		o.ImageW = 192
	}
	if o.ImageH == 0 {
		o.ImageH = 128
	}
	if o.Rows <= 0 {
		o.Rows = 60000
	}
	if o.StageDelay == 0 {
		o.StageDelay = 8 * time.Millisecond
	}
	if o.OutDir == "" {
		dir, err := os.MkdirTemp("", "pilot-bench")
		if err != nil {
			return o, err
		}
		o.OutDir = dir
	} else if err := os.MkdirAll(o.OutDir, 0o755); err != nil {
		return o, err
	}
	return o, nil
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// median returns the median and sample variance of xs (in seconds).
func medianVar(xs []float64) (med, variance float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		med = s[n/2]
	} else {
		med = (s[n/2-1] + s[n/2]) / 2
	}
	var mean float64
	for _, x := range s {
		mean += x
	}
	mean /= float64(n)
	for _, x := range s {
		variance += (x - mean) * (x - mean)
	}
	if n > 1 {
		variance /= float64(n - 1)
	}
	return med, variance
}

// T1Row is one row of the Section III.E overhead table.
type T1Row struct {
	// WorkProcs is the paper's "work processes" count (compressor + Ds).
	WorkProcs int
	// Mode is "nolog", "mpe" (Jumpshot) or "native".
	Mode string
	// Level is the error-check level.
	Level int
	// MedianSec and Variance summarise Runs repetitions, as the paper
	// reports ("median execution time calculated [variance shown in
	// brackets]").
	MedianSec float64
	Variance  float64
	// WrapUpSec is the median MPE wrap-up cost (mpe mode only).
	WrapUpSec float64
}

// String renders the row in the paper's style.
func (r T1Row) String() string {
	s := fmt.Sprintf("work=%2d level=%d %-7s %8.3fs [%0.4f]", r.WorkProcs, r.Level, r.Mode, r.MedianSec, r.Variance)
	if r.Mode == "mpe" {
		s += fmt.Sprintf("  wrap-up %6.3fs", r.WrapUpSec)
	}
	return s
}

// thumbCfg builds a thumbnail config for a T1 cell. The slot budget is
// 1 (PI_MAIN) + workProcs, exactly the paper's "5 or 10 work processes
// (plus one for PI_MAIN)". The native log's service process displaces one
// decompressor within that budget, as on the paper's cluster.
func (o Options) thumbCfg(workProcs int, mode string, level int, clogPath string) thumbnail.Config {
	cfg := thumbnail.Config{
		NumImages:  o.Images,
		ImageW:     o.ImageW,
		ImageH:     o.ImageH,
		Seed:       42,
		StageDelay: o.StageDelay,
		Core: core.Config{
			CheckLevel:   level,
			JumpshotPath: clogPath,
			NativePath:   clogPath + ".native.log",
			Faults:       o.Faults,
			Metrics:      o.Metrics,
		},
	}
	switch mode {
	case "mpe":
		cfg.Core.Services = "j"
		cfg.Workers = workProcs - 1 // minus the compressor
	case "native":
		cfg.Core.Services = "c"
		cfg.Workers = workProcs - 2 // one D displaced by the service rank
	default:
		cfg.Workers = workProcs - 1
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	return cfg
}

// RunT1 regenerates the overhead table: no logging vs MPE logging vs
// native logging at 5 and 10 work processes (error level 3), plus an
// error-check-level sweep demonstrating the paper's finding that the
// level is "essentially inconsequential".
func RunT1(opt Options) ([]T1Row, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	type cell struct {
		work  int
		mode  string
		level int
	}
	cells := []cell{
		{5, "nolog", 3}, {5, "mpe", 3}, {5, "native", 3},
		{10, "nolog", 3}, {10, "mpe", 3}, {10, "native", 3},
		{5, "nolog", 0}, {5, "nolog", 1}, {5, "nolog", 2},
	}
	var rows []T1Row
	for _, c := range cells {
		var times, wraps []float64
		for run := 0; run < opt.Runs; run++ {
			clog := filepath.Join(opt.OutDir, fmt.Sprintf("t1-%s-%d.clog2", c.mode, c.work))
			cfg := opt.thumbCfg(c.work, c.mode, c.level, clog)
			cfg.Seed = int64(run) // vary inputs across repetitions
			res, err := thumbnail.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("t1 %s/%d run %d: %w", c.mode, c.work, run, err)
			}
			if res.Thumbnails != opt.Images {
				return nil, fmt.Errorf("t1 %s/%d: %d thumbnails, want %d", c.mode, c.work, res.Thumbnails, opt.Images)
			}
			times = append(times, res.Elapsed.Seconds())
			if c.mode == "mpe" {
				wraps = append(wraps, res.WrapUp.Seconds())
			}
		}
		med, v := medianVar(times)
		row := T1Row{WorkProcs: c.work, Mode: c.mode, Level: c.level, MedianSec: med, Variance: v}
		if len(wraps) > 0 {
			row.WrapUpSec, _ = medianVar(wraps)
		}
		rows = append(rows, row)
		opt.logf("T1 %s", row)
	}
	return rows, nil
}

// T1Shape checks the qualitative claims of the table against measured
// rows and returns human-readable verdicts: MPE ≈ no-log; native slower
// (a worker displaced); near-2× speedup from 5→10; error level
// immaterial; wrap-up sub-second at this scale.
func T1Shape(rows []T1Row) []string {
	get := func(work int, mode string, level int) *T1Row {
		for i := range rows {
			r := &rows[i]
			if r.WorkProcs == work && r.Mode == mode && r.Level == level {
				return r
			}
		}
		return nil
	}
	var out []string
	check := func(name string, ok bool, detail string) {
		verdict := "OK "
		if !ok {
			verdict = "MISS"
		}
		out = append(out, fmt.Sprintf("%s %-34s %s", verdict, name, detail))
	}
	n5, m5, v5 := get(5, "nolog", 3), get(5, "mpe", 3), get(5, "native", 3)
	n10, m10, v10 := get(10, "nolog", 3), get(10, "mpe", 3), get(10, "native", 3)
	if n5 == nil || m5 == nil || v5 == nil || n10 == nil || m10 == nil || v10 == nil {
		return append(out, "MISS incomplete table")
	}
	check("MPE ~ no-log (5 work)", m5.MedianSec < n5.MedianSec*1.15,
		fmt.Sprintf("mpe %.3fs vs nolog %.3fs (paper: 30.03 vs 30.97)", m5.MedianSec, n5.MedianSec))
	check("MPE ~ no-log (10 work)", m10.MedianSec < n10.MedianSec*1.15,
		fmt.Sprintf("mpe %.3fs vs nolog %.3fs (paper: 14.42 vs 14.42)", m10.MedianSec, n10.MedianSec))
	check("native slower, 5 work", v5.MedianSec > n5.MedianSec*1.1,
		fmt.Sprintf("native %.3fs vs nolog %.3fs (paper: 40.64 vs 30.97)", v5.MedianSec, n5.MedianSec))
	check("native penalty shrinks at 10", v10.MedianSec/n10.MedianSec < v5.MedianSec/n5.MedianSec,
		fmt.Sprintf("ratios %.2f vs %.2f (paper: 1.12 vs 1.31)", v10.MedianSec/n10.MedianSec, v5.MedianSec/n5.MedianSec))
	check("speedup 5 -> 10 work", n10.MedianSec < n5.MedianSec*0.75,
		fmt.Sprintf("%.3fs -> %.3fs (paper: 30.97 -> 14.42, 'nice speedup')", n5.MedianSec, n10.MedianSec))
	check("wrap-up bearable", m5.WrapUpSec < m5.MedianSec && m10.WrapUpSec < 5,
		fmt.Sprintf("%.3fs / %.3fs (paper: 0.74 / 0.84)", m5.WrapUpSec, m10.WrapUpSec))
	l0, l3 := get(5, "nolog", 0), get(5, "nolog", 3)
	if l0 != nil && l3 != nil {
		diff := math.Abs(l0.MedianSec-l3.MedianSec) / l3.MedianSec
		check("error level inconsequential", diff < 0.2,
			fmt.Sprintf("level0 %.3fs vs level3 %.3fs (%.0f%%)", l0.MedianSec, l3.MedianSec, diff*100))
	}
	return out
}
