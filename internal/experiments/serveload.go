// The tile-service load harness behind `pilot-bench -serve`: drive a
// live pilot-serve instance with concurrent viewer-shaped clients and
// measure tile latency cold (every request renders) versus cached
// (every request is an LRU hit), plus the singleflight guarantee —
// concurrent first hits on a trace cost exactly one decode. The rows
// land in BENCH_overhead.json next to the logging-overhead tables.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/slog2"
)

// ServeRow is one load-harness phase: latency percentiles and
// throughput over Clients concurrent clients issuing Requests tile
// fetches against a repository of Traces traces.
type ServeRow struct {
	// Phase is "cold" (distinct windows, every tile rendered) or
	// "cached" (the same windows replayed, every tile an LRU hit).
	Phase    string `json:"phase"`
	Clients  int    `json:"clients"`
	Requests int    `json:"requests"`
	Traces   int    `json:"traces"`
	// P50Ms and P99Ms are per-request tile latency percentiles.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// TilesPerSec is aggregate throughput over the phase.
	TilesPerSec float64 `json:"tiles_per_sec"`
	// Decodes is the repository's decode counter after the phase; on the
	// cold row it must equal Traces — singleflight collapsed the herd.
	Decodes int64 `json:"decodes"`
}

// String renders the row for the pilot-bench console output.
func (r ServeRow) String() string {
	return fmt.Sprintf("%-6s clients=%-3d reqs=%-5d p50=%8.3f ms  p99=%8.3f ms  %9.1f tiles/s  decodes=%d/%d",
		r.Phase, r.Clients, r.Requests, r.P50Ms, r.P99Ms, r.TilesPerSec, r.Decodes, r.Traces)
}

// ServeLoadOptions tunes RunServeLoad.
type ServeLoadOptions struct {
	// RepoDir is the trace repository to serve; empty synthesizes a
	// dense repository in a temp dir (DenseStates drawables per trace),
	// so cold tiles cost real render work instead of vanishing into the
	// HTTP floor.
	RepoDir string
	// DenseStates sizes the synthesized traces (default 30000 states
	// each, plus arrows and events).
	DenseStates int
	// Clients is the number of concurrent clients (default 32).
	Clients int
	// PerClient is tile requests per client per phase (default 16).
	PerClient int
	Logf      func(format string, args ...any)
}

// synthesizeRepo writes nTraces dense single-frame traces into dir —
// the workload that makes cold-vs-cached latency a render measurement.
func synthesizeRepo(dir string, nTraces, nStates int) error {
	rng := rand.New(rand.NewSource(7))
	for t := 0; t < nTraces; t++ {
		const nranks = 16
		f := &slog2.File{
			NumRanks: nranks,
			Start:    0, End: 100,
			Categories: []slog2.Category{
				{Name: "PI_Write", Color: "green"},
				{Name: "PI_Read", Color: "red"},
				{Name: "MsgArrival", Color: "white", Kind: slog2.KindEvent},
			},
		}
		root := &slog2.Frame{Start: 0, End: 100}
		for i := 0; i < nStates; i++ {
			t0 := rng.Float64() * 99
			root.States = append(root.States, slog2.State{
				Rank: rng.Intn(nranks), Cat: rng.Intn(2),
				Start: t0, End: t0 + rng.Float64(),
				StartCargo: "line: app.go:42",
			})
			if i%8 == 0 {
				root.Arrows = append(root.Arrows, slog2.Arrow{
					SrcRank: rng.Intn(nranks), DstRank: rng.Intn(nranks),
					Start: t0, End: t0 + rng.Float64()*0.2, Tag: i % 7, Size: 64,
				})
			}
			if i%16 == 0 {
				root.Events = append(root.Events, slog2.Event{
					Rank: rng.Intn(nranks), Cat: 2, Time: t0,
				})
			}
		}
		f.Root = root
		if err := slog2.WriteFile(filepath.Join(dir, fmt.Sprintf("dense%d.slog2", t)), f); err != nil {
			return err
		}
	}
	return nil
}

// RunServeLoad starts a pilot-serve instance on an ephemeral port and
// runs two phases over real TCP: cold — every client requests distinct
// tile windows, so each request renders (and the opening wave hits
// every trace concurrently, exercising singleflight on the decode
// path); cached — the identical windows replayed, so every request is
// a tile-LRU hit. Returns one row per phase. Errors out if the cold
// phase decoded any trace more than once: that is the singleflight
// guarantee the service is built around.
func RunServeLoad(opt ServeLoadOptions) ([]ServeRow, error) {
	if opt.Clients <= 0 {
		opt.Clients = 32
	}
	if opt.PerClient <= 0 {
		opt.PerClient = 16
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if opt.RepoDir == "" {
		if opt.DenseStates <= 0 {
			opt.DenseStates = 30000
		}
		dir, err := os.MkdirTemp("", "serveload-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		if err := synthesizeRepo(dir, 3, opt.DenseStates); err != nil {
			return nil, err
		}
		opt.RepoDir = dir
		logf("SV synthesized 3 dense traces (%d states each) in %s", opt.DenseStates, dir)
	}

	totalTiles := opt.Clients * opt.PerClient
	srv, err := serve.New(serve.Config{
		RepoDir: opt.RepoDir,
		// The cached phase depends on every cold tile still being
		// resident, so the tile LRU must hold the whole working set.
		MaxTiles: totalTiles * 2,
	})
	if err != nil {
		return nil, err
	}
	traces, err := srv.Repo().List()
	if err != nil {
		return nil, err
	}
	if len(traces) == 0 {
		return nil, fmt.Errorf("serveload: repository %s holds no traces", opt.RepoDir)
	}

	// Resolve each trace's time span by decoding directly from disk —
	// NOT through the repository, whose cache must stay stone cold for
	// the singleflight check to mean anything.
	spans := map[string][2]float64{}
	for _, info := range traces {
		f, err := slog2.ReadFile(filepath.Join(opt.RepoDir, info.ID+".slog2"))
		if err != nil {
			return nil, fmt.Errorf("serveload: %s: %v", info.ID, err)
		}
		spans[info.ID] = [2]float64{f.Start, f.End}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// The clients ask for gzip like a browser would but read the wire
	// bytes as-is (DisableCompression + explicit header): the harness
	// times the service — render + compress on cold, cached bytes on
	// hot — not its own decompression.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        opt.Clients * 2,
		MaxIdleConnsPerHost: opt.Clients * 2,
		DisableCompression:  true,
	}}
	fetch := func(u string) (*http.Response, error) {
		req, err := http.NewRequest("GET", u, nil)
		if err != nil {
			return nil, err
		}
		req.Header.Set("Accept-Encoding", "gzip")
		return client.Do(req)
	}

	// Pre-compute every client's request URLs: a distinct viewer-sized
	// window (2–8% of the trace span, distinct offsets) per global
	// request index, traces round-robin, so the cold phase renders
	// totalTiles distinct tiles and the cached phase replays them 1:1.
	urls := make([][]string, opt.Clients)
	for c := 0; c < opt.Clients; c++ {
		urls[c] = make([]string, opt.PerClient)
		for i := 0; i < opt.PerClient; i++ {
			g := c*opt.PerClient + i
			id := traces[g%len(traces)].ID
			sp := spans[id]
			span := sp[1] - sp[0]
			t0 := sp[0] + span*(float64(g%83)/92.0)
			t1 := t0 + span*(0.02+float64(g%7)*0.01)
			if t1 > sp[1] {
				t1 = sp[1]
			}
			urls[c][i] = fmt.Sprintf("%s/trace/%s/tile?t0=%.9f&t1=%.9f", base, id, t0, t1)
		}
	}

	runPhase := func(phase string) (ServeRow, error) {
		lat := make([][]time.Duration, opt.Clients)
		var wg sync.WaitGroup
		errCh := make(chan error, opt.Clients)
		start := make(chan struct{})
		for c := 0; c < opt.Clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				lat[c] = make([]time.Duration, 0, opt.PerClient)
				<-start // barrier: the opening wave is genuinely concurrent
				for _, u := range urls[c] {
					t := time.Now()
					resp, err := fetch(u)
					if err != nil {
						errCh <- err
						return
					}
					_, err = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if err != nil {
						errCh <- err
						return
					}
					if resp.StatusCode != 200 {
						errCh <- fmt.Errorf("%s: status %d", u, resp.StatusCode)
						return
					}
					lat[c] = append(lat[c], time.Since(t))
				}
			}(c)
		}
		t0 := time.Now()
		close(start)
		wg.Wait()
		wall := time.Since(t0)
		close(errCh)
		for err := range errCh {
			return ServeRow{}, err
		}
		var all []time.Duration
		for _, l := range lat {
			all = append(all, l...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		pct := func(p float64) float64 {
			i := int(p * float64(len(all)-1))
			return float64(all[i].Nanoseconds()) / 1e6
		}
		row := ServeRow{
			Phase: phase, Clients: opt.Clients, Requests: len(all), Traces: len(traces),
			P50Ms: pct(0.50), P99Ms: pct(0.99),
			TilesPerSec: float64(len(all)) / wall.Seconds(),
			Decodes:     srv.Repo().Decodes(),
		}
		logf("SV %s", row)
		return row, nil
	}

	finish := func() error { cancel(); return <-done }

	cold, err := runPhase("cold")
	if err != nil {
		finish()
		return nil, err
	}
	cached, err := runPhase("cached")
	if err != nil {
		finish()
		return nil, err
	}
	if err := finish(); err != nil {
		return nil, fmt.Errorf("serveload: shutdown: %v", err)
	}

	if cold.Decodes != int64(len(traces)) {
		return nil, fmt.Errorf("serveload: singleflight broken: %d decodes for %d traces under concurrent first hits",
			cold.Decodes, len(traces))
	}
	logf("SV singleflight ok: %d traces, %d decodes under %d concurrent clients",
		len(traces), cold.Decodes, opt.Clients)
	if cached.P50Ms*5 > cold.P50Ms {
		logf("SV warning: cached p50 %.3f ms not 5x faster than cold %.3f ms", cached.P50Ms, cold.P50Ms)
	}
	return []ServeRow{cold, cached}, nil
}
