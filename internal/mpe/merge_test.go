package mpe

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/clog2"
	"repro/internal/mpi"
)

// Property: the merged CLOG-2 contains exactly the records every rank
// buffered (plus one timeshift per rank and the definition table), for
// random per-rank logging loads.
func TestFinishMergePreservesEverythingProperty(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5) + 1
		w := mpi.NewWorld(n, mpi.Options{})
		g := NewGroup(w, true)
		sids := []StateID{
			g.DescribeState("A", "red"),
			g.DescribeState("B", "green"),
		}
		eid := g.DescribeEvent("E", "yellow")

		wantPerRank := make([]int, n)
		loads := make([]int, n)
		for r := 0; r < n; r++ {
			loads[r] = rng.Intn(50)
		}
		var out bytes.Buffer
		errs := w.Run(func(r *mpi.Rank) error {
			l := g.Logger(r.ID())
			for i := 0; i < loads[r.ID()]; i++ {
				sid := sids[i%len(sids)]
				l.StateStart(sid, "x")
				l.StateEnd(sid, "")
				if i%3 == 0 {
					l.Event(eid, "e")
				}
			}
			if r.ID() == 0 {
				return l.Finish(&out)
			}
			return l.Finish(nil)
		})
		for i, err := range errs {
			if err != nil {
				t.Fatalf("seed %d rank %d: %v", seed, i, err)
			}
		}
		for r := 0; r < n; r++ {
			wantPerRank[r] = 2*loads[r] + (loads[r]+2)/3 // starts+ends+events
		}

		f, err := clog2.Read(&out)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		gotPerRank := make([]int, n)
		shifts := 0
		for _, rec := range f.Records() {
			switch rec.Type {
			case clog2.RecCargoEvt, clog2.RecBareEvt:
				gotPerRank[rec.Rank]++
			case clog2.RecTimeShift:
				shifts++
			}
		}
		for r := 0; r < n; r++ {
			if gotPerRank[r] != wantPerRank[r] {
				t.Fatalf("seed %d rank %d: merged %d records, want %d",
					seed, r, gotPerRank[r], wantPerRank[r])
			}
		}
		if shifts != n {
			t.Fatalf("seed %d: %d timeshifts, want %d", seed, shifts, n)
		}
		if got := len(f.StateDefs()); got != 2 {
			t.Fatalf("seed %d: %d state defs", seed, got)
		}
	}
}
