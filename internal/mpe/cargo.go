package mpe

import (
	"strconv"

	"repro/internal/clog2"
)

// Append-style cargo builders: every Pilot call site used to render its
// event cargo with fmt.Sprintf and then truncate to the MPE 40-byte
// limit, which allocates on every logged event. These builders format
// directly into the fixed-size buffer, truncating exactly where the old
// Sprintf-then-truncate path did (a rune straddling the boundary is
// dropped whole, see clog2.Trunc), so a stack-allocated Cargo never
// grows or escapes and the hot path stays allocation-free.

// AppendStr appends s to dst, bounding the total length to MaxCargo.
func AppendStr(dst []byte, s string) []byte {
	room := clog2.MaxCargo - len(dst)
	if room <= 0 {
		return dst
	}
	return append(dst, clog2.Trunc(s, room)...)
}

// appendRaw is AppendStr for an already-formatted byte slice.
func appendRaw(dst, b []byte) []byte {
	room := clog2.MaxCargo - len(dst)
	if room <= 0 {
		return dst
	}
	return append(dst, clog2.TruncBytes(b, room)...)
}

// AppendKV appends "key: val", preceded by a space unless dst is empty —
// the "line: %s proc: %s" shape the Pilot cargos use.
func AppendKV(dst []byte, key, val string) []byte {
	if len(dst) > 0 {
		dst = AppendStr(dst, " ")
	}
	dst = AppendStr(dst, key)
	dst = AppendStr(dst, ": ")
	return AppendStr(dst, val)
}

// AppendInt appends the decimal form of v, as fmt's %d would.
func AppendInt(dst []byte, v int) []byte {
	var tmp [20]byte
	return appendRaw(dst, strconv.AppendInt(tmp[:0], int64(v), 10))
}

// AppendFloat appends v with prec digits after the decimal point, as
// fmt's %.*f would.
func AppendFloat(dst []byte, v float64, prec int) []byte {
	var tmp [40]byte
	return appendRaw(dst, strconv.AppendFloat(tmp[:0], v, 'f', prec, 64))
}

// AppendBool appends "true" or "false", as fmt's %v would.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return AppendStr(dst, "true")
	}
	return AppendStr(dst, "false")
}

// Cargo is the chainable form of the Append builders over an in-place
// buffer: declare one on the stack, chain the fields, pass Bytes() to
// the logger's *Bytes methods.
type Cargo struct {
	n   int
	buf [clog2.MaxCargo]byte
}

// Bytes returns the assembled cargo, valid until the next builder call.
func (c *Cargo) Bytes() []byte { return c.buf[:c.n] }

// Reset empties the buffer for reuse.
func (c *Cargo) Reset() *Cargo { c.n = 0; return c }

// Str appends s.
func (c *Cargo) Str(s string) *Cargo {
	c.n = len(AppendStr(c.buf[:c.n], s))
	return c
}

// Raw appends an already-formatted byte slice.
func (c *Cargo) Raw(b []byte) *Cargo {
	c.n = len(appendRaw(c.buf[:c.n], b))
	return c
}

// KV appends "key: val", space-separated from any existing content.
func (c *Cargo) KV(key, val string) *Cargo {
	c.n = len(AppendKV(c.buf[:c.n], key, val))
	return c
}

// Int appends the decimal form of v.
func (c *Cargo) Int(v int) *Cargo {
	c.n = len(AppendInt(c.buf[:c.n], v))
	return c
}

// Float appends v with prec digits after the decimal point.
func (c *Cargo) Float(v float64, prec int) *Cargo {
	c.n = len(AppendFloat(c.buf[:c.n], v, prec))
	return c
}

// Bool appends "true" or "false".
func (c *Cargo) Bool(v bool) *Cargo {
	c.n = len(AppendBool(c.buf[:c.n], v))
	return c
}
