package mpe

import (
	"sync"

	"repro/internal/clog2"
)

// chunkRecords sizes the arena chunks: 256 records is ~34 KB per chunk,
// small enough to recycle freely and large enough that the pool round
// trip amortises to well under one allocation per logged event.
const chunkRecords = 256

// recChunk is one fixed-size block of records. Chunks are zeroed before
// they go back to the pool, so alloc can hand out slots without clearing
// them on the hot path.
type recChunk struct {
	recs [chunkRecords]clog2.Record
	n    int
}

var chunkPool = sync.Pool{New: func() any { return new(recChunk) }}

// arena is a chunked, append-only record store: the Logger's buffer.
// Unlike a flat slice it never copies records when it grows, and its
// chunks are recycled across runs via chunkPool.
type arena struct {
	chunks []*recChunk
	total  int
}

// alloc hands out a pointer to the next zeroed record slot.
func (a *arena) alloc() *clog2.Record {
	var c *recChunk
	if n := len(a.chunks); n > 0 {
		c = a.chunks[n-1]
	}
	if c == nil || c.n == chunkRecords {
		c = chunkPool.Get().(*recChunk)
		a.chunks = append(a.chunks, c)
	}
	r := &c.recs[c.n]
	c.n++
	a.total++
	return r
}

func (a *arena) len() int { return a.total }

// forEach visits every record in log order.
func (a *arena) forEach(fn func(*clog2.Record)) {
	for _, c := range a.chunks {
		for i := 0; i < c.n; i++ {
			fn(&c.recs[i])
		}
	}
}

// slices appends the chunk contents to dst as record slices in log
// order — the shape Writer.WriteBlockChunks consumes.
func (a *arena) slices(dst [][]clog2.Record) [][]clog2.Record {
	for _, c := range a.chunks {
		dst = append(dst, c.recs[:c.n])
	}
	return dst
}

// release zeroes every chunk and returns it to the pool, leaving the
// arena empty.
func (a *arena) release() {
	for _, c := range a.chunks {
		*c = recChunk{}
		chunkPool.Put(c)
	}
	a.chunks = nil
	a.total = 0
}
