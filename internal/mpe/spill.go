package mpe

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"repro/internal/clog2"
	"repro/internal/stats"
)

// Spill support: the paper's future work, implemented. "It would be
// better if the MPE log could be finalized in all cases" — with spilling
// enabled, every rank writes each record through to a per-rank spill file
// as it is logged (the same write-per-entry discipline that makes the
// native log abort-proof). A clean Finish removes the spill files; after
// an abort, Salvage merges the surviving fragments into a complete CLOG-2
// file.
//
// Two spill formats exist on disk:
//
//   - v2 (default): each write is one self-synchronizing segment — magic
//     marker, version, rank, per-rank sequence number, payload length and
//     a CRC-32C over header+payload, wrapping the bare CLOG-2 block
//     encoding (see clog2/segment.go). One corrupted byte costs at most
//     the segment holding it; salvage resynchronizes on the next marker
//     and detects interior losses via sequence gaps.
//   - v1 (legacy, SetSpillFormat(1)): a raw CLOG-2 stream. Survives clean
//     truncation via clog2.ReadLenient, but a torn write or flipped byte
//     mid-file silently discards everything after it. Kept for fragments
//     from old runs and as the framing-overhead baseline.
//
// Caveat inherited from the design: records in spill files carry raw,
// unsynchronised per-rank clocks, because MPE_Log_sync_clocks runs during
// the wrap-up that an abort skips. With shared or mildly drifting clocks
// the salvaged log is still perfectly usable for debugging — and
// debugging an aborted program is exactly when you want it.

// spill is a per-rank write-through fragment: a raw CLOG-2 stream in v1,
// a segment stream in v2.
type spill struct {
	f       *os.File
	version int

	// v1 state: a persistent stream writer (file header written once)
	// over a counting shim, so spilled bytes are observable.
	w  *clog2.Writer
	cw *countingWriter

	// v2 state: a reusable frame buffer (header placeholder + payload,
	// encoded in place), the bare block writer over it, and the per-rank
	// segment sequence counter. All reused so steady-state spilling
	// allocates nothing.
	buf bytes.Buffer
	bw  *clog2.Writer
	seq uint64

	// mx mirrors spill traffic into the live metrics (nil = disabled).
	mx *stats.Collector
}

// countingWriter tracks cumulative bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// segHeaderPlaceholder reserves room for the v2 frame header; the real
// header is patched in after the payload is encoded behind it.
var segHeaderPlaceholder [clog2.SegHeaderSize]byte

// dead reports a degraded spill (open failed; writes are dropped).
func (sp *spill) dead() bool { return sp.f == nil }

// EnableSpill turns on write-through spilling for every logger in the
// group. prefix names the spill family: rank r writes
// "<prefix>.rank<r>.spill" and the definition table goes to
// "<prefix>.defs.spill". Call before any logging happens.
func (g *Group) EnableSpill(prefix string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.spillPrefix = prefix
}

// SpillPrefix returns the active spill prefix ("" when disabled).
func (g *Group) SpillPrefix() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.spillPrefix
}

// SetSpillBatch sets how many records a spill encode covers. The default
// of 1 writes and flushes every record immediately — the abort-proof
// discipline RobustLog depends on. Larger batches amortise the encode
// and flush over n records at the cost of losing up to n-1 trailing
// records on an abort; the overhead harness measures the difference.
// Call before any logging happens, alongside EnableSpill.
func (g *Group) SetSpillBatch(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if n < 1 {
		n = 1
	}
	g.spillBatch = n
}

// SpillBatch returns the spill batch size (minimum 1).
func (g *Group) SpillBatch() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.spillBatch < 1 {
		return 1
	}
	return g.spillBatch
}

// SetSpillFormat selects the on-disk spill format: 2 (default) writes
// checksummed self-synchronizing segments, 1 writes the legacy raw
// CLOG-2 stream. Anything else is clamped to the default. Call before
// any logging happens, alongside EnableSpill.
func (g *Group) SetSpillFormat(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if v != clog2.SpillFormatV1 && v != clog2.SpillFormatV2 {
		v = clog2.SpillFormatV2
	}
	g.spillFormat = v
}

// SpillFormat returns the active spill format (1 or 2).
func (g *Group) SpillFormat() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.spillFormat == clog2.SpillFormatV1 {
		return clog2.SpillFormatV1
	}
	return clog2.SpillFormatV2
}

func spillRankPath(prefix string, rank int) string {
	return fmt.Sprintf("%s.rank%d.spill", prefix, rank)
}

func spillDefsPath(prefix string) string { return prefix + ".defs.spill" }

// SpillDefs writes the definition tables to the defs spill file. Pilot
// calls it once, after all states and events are described (at
// PI_StartAll). In v2 the defs — a complete miniature CLOG-2 file — are
// wrapped in a single checksummed segment, so salvage can tell a damaged
// defs table from an intact one and fall back to synthesized defs.
func (g *Group) SpillDefs() error {
	prefix := g.SpillPrefix()
	if prefix == "" || !g.enabled {
		return nil
	}
	var inner bytes.Buffer
	w, err := clog2.NewWriter(&inner, g.world.Size())
	if err != nil {
		return err
	}
	if err := w.WriteBlock(0, g.defRecords()); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	var data []byte
	if g.SpillFormat() == clog2.SpillFormatV1 {
		data = inner.Bytes()
	} else {
		data = clog2.AppendSegment(nil, 0, 0, inner.Bytes())
	}
	return os.WriteFile(spillDefsPath(prefix), data, 0o644)
}

// ensureSpill lazily opens the logger's spill file (on the logger's own
// goroutine, so no locking is needed beyond the prefix read).
func (l *Logger) ensureSpill() *spill {
	if l.sp != nil {
		if l.sp.dead() {
			return nil
		}
		return l.sp
	}
	prefix := l.g.SpillPrefix()
	if prefix == "" {
		return nil
	}
	version := l.g.SpillFormat()
	f, err := os.Create(spillRankPath(prefix, l.rank.ID()))
	if err != nil {
		l.spErr = err
		l.sp = &spill{} // degraded: stop retrying
		return nil
	}
	sp := &spill{f: f, version: version, mx: l.g.world.Metrics()}
	if version == clog2.SpillFormatV1 {
		sp.cw = &countingWriter{w: f}
		w, err := clog2.NewWriter(sp.cw, l.rank.Size())
		if err != nil {
			f.Close()
			l.spErr = err
			l.sp = &spill{}
			return nil
		}
		sp.w = w
	} else {
		sp.bw = clog2.NewBareBlockWriter(&sp.buf)
	}
	l.sp = sp
	return l.sp
}

// writeBlock lands one batch of records on disk: a flushed stream block
// in v1, one framed segment in v2 (a single write call, so a torn write
// damages at most this segment).
func (sp *spill) writeBlock(rank int32, recs []clog2.Record) error {
	if sp.version == clog2.SpillFormatV1 {
		before := sp.cw.n
		if err := sp.w.WriteBlock(rank, recs); err != nil {
			return err
		}
		if err := sp.w.Flush(); err != nil {
			return err
		}
		sp.mx.SpillWrite(int(rank), int(sp.cw.n-before))
		return nil
	}
	sp.buf.Reset()
	sp.buf.Write(segHeaderPlaceholder[:])
	if err := sp.bw.WriteBlockChunks(rank, recs); err != nil {
		return err
	}
	if err := sp.bw.Flush(); err != nil {
		return err
	}
	frame := sp.buf.Bytes()
	clog2.FinalizeSegmentHeader(frame, rank, sp.seq)
	if _, err := sp.f.Write(frame); err != nil {
		return err
	}
	sp.seq++
	sp.mx.SpillWrite(int(rank), len(frame))
	return nil
}

// spillRecord writes one record through to disk immediately (batch 1),
// or queues it for a block-sized encode (batch > 1).
func (l *Logger) spillRecord(rec *clog2.Record) {
	sp := l.ensureSpill()
	if sp == nil {
		return
	}
	if l.spBatch <= 1 {
		l.spillArr[0] = *rec
		if err := sp.writeBlock(int32(l.rank.ID()), l.spillArr[:]); err != nil {
			l.spErr = err
		}
		return
	}
	if l.spPend == nil {
		l.spPend = make([]clog2.Record, 0, l.spBatch)
	}
	l.spPend = append(l.spPend, *rec)
	if len(l.spPend) >= l.spBatch {
		l.flushSpillBatch(sp)
	}
}

// flushSpillBatch encodes the pending batch as one block and flushes it.
func (l *Logger) flushSpillBatch(sp *spill) {
	if len(l.spPend) == 0 {
		return
	}
	if err := sp.writeBlock(int32(l.rank.ID()), l.spPend); err != nil {
		l.spErr = err
	}
	l.spPend = l.spPend[:0]
}

// closeSpill finalises the logger's spill file; when remove is true
// (clean shutdown) the file is deleted, since the merged log supersedes
// it.
func (l *Logger) closeSpill(remove bool) {
	if l.sp == nil || l.sp.dead() {
		return
	}
	l.flushSpillBatch(l.sp)
	if l.sp.version == clog2.SpillFormatV1 {
		l.sp.w.Close()
	}
	l.sp.f.Close()
	if remove {
		os.Remove(l.sp.f.Name())
	}
	l.sp = nil
}

// SpillError reports the first spill-write failure, if any (diagnostics).
func (l *Logger) SpillError() error { return l.spErr }
