package mpe

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/clog2"
)

// Spill support: the paper's future work, implemented. "It would be
// better if the MPE log could be finalized in all cases" — with spilling
// enabled, every rank writes each record through to a per-rank spill file
// as it is logged (the same write-per-entry discipline that makes the
// native log abort-proof). A clean Finish removes the spill files; after
// an abort, Salvage merges the surviving fragments into a complete CLOG-2
// file.
//
// Caveat inherited from the design: records in spill files carry raw,
// unsynchronised per-rank clocks, because MPE_Log_sync_clocks runs during
// the wrap-up that an abort skips. With shared or mildly drifting clocks
// the salvaged log is still perfectly usable for debugging — and
// debugging an aborted program is exactly when you want it.

// spill is a per-rank write-through CLOG-2 fragment.
type spill struct {
	f *os.File
	w *clog2.Writer
}

// EnableSpill turns on write-through spilling for every logger in the
// group. prefix names the spill family: rank r writes
// "<prefix>.rank<r>.spill" and the definition table goes to
// "<prefix>.defs.spill". Call before any logging happens.
func (g *Group) EnableSpill(prefix string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.spillPrefix = prefix
}

// SpillPrefix returns the active spill prefix ("" when disabled).
func (g *Group) SpillPrefix() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.spillPrefix
}

// SetSpillBatch sets how many records a spill encode covers. The default
// of 1 writes and flushes every record immediately — the abort-proof
// discipline RobustLog depends on. Larger batches amortise the encode
// and flush over n records at the cost of losing up to n-1 trailing
// records on an abort; the overhead harness measures the difference.
// Call before any logging happens, alongside EnableSpill.
func (g *Group) SetSpillBatch(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if n < 1 {
		n = 1
	}
	g.spillBatch = n
}

// SpillBatch returns the spill batch size (minimum 1).
func (g *Group) SpillBatch() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.spillBatch < 1 {
		return 1
	}
	return g.spillBatch
}

func spillRankPath(prefix string, rank int) string {
	return fmt.Sprintf("%s.rank%d.spill", prefix, rank)
}

func spillDefsPath(prefix string) string { return prefix + ".defs.spill" }

// SpillDefs writes the definition tables to the defs spill file. Pilot
// calls it once, after all states and events are described (at
// PI_StartAll).
func (g *Group) SpillDefs() error {
	prefix := g.SpillPrefix()
	if prefix == "" || !g.enabled {
		return nil
	}
	f, err := os.Create(spillDefsPath(prefix))
	if err != nil {
		return err
	}
	w, err := clog2.NewWriter(f, g.world.Size())
	if err != nil {
		f.Close()
		return err
	}
	if err := w.WriteBlock(0, g.defRecords()); err != nil {
		f.Close()
		return err
	}
	if err := w.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ensureSpill lazily opens the logger's spill file (on the logger's own
// goroutine, so no locking is needed beyond the prefix read).
func (l *Logger) ensureSpill() *spill {
	if l.sp != nil {
		return l.sp
	}
	prefix := l.g.SpillPrefix()
	if prefix == "" {
		return nil
	}
	f, err := os.Create(spillRankPath(prefix, l.rank.ID()))
	if err != nil {
		l.spErr = err
		l.sp = &spill{} // degraded: stop retrying
		return nil
	}
	w, err := clog2.NewWriter(f, l.rank.Size())
	if err != nil {
		f.Close()
		l.spErr = err
		l.sp = &spill{}
		return nil
	}
	l.sp = &spill{f: f, w: w}
	return l.sp
}

// spillRecord writes one record through to disk immediately (batch 1),
// or queues it for a block-sized encode (batch > 1).
func (l *Logger) spillRecord(rec *clog2.Record) {
	sp := l.ensureSpill()
	if sp == nil || sp.w == nil {
		return
	}
	if l.spBatch <= 1 {
		l.spillArr[0] = *rec
		if err := sp.w.WriteBlock(int32(l.rank.ID()), l.spillArr[:]); err != nil {
			l.spErr = err
			return
		}
		l.spErr = sp.w.Flush()
		return
	}
	if l.spPend == nil {
		l.spPend = make([]clog2.Record, 0, l.spBatch)
	}
	l.spPend = append(l.spPend, *rec)
	if len(l.spPend) >= l.spBatch {
		l.flushSpillBatch(sp)
	}
}

// flushSpillBatch encodes the pending batch as one block and flushes it.
func (l *Logger) flushSpillBatch(sp *spill) {
	if len(l.spPend) == 0 {
		return
	}
	if err := sp.w.WriteBlock(int32(l.rank.ID()), l.spPend); err != nil {
		l.spErr = err
	} else {
		l.spErr = sp.w.Flush()
	}
	l.spPend = l.spPend[:0]
}

// closeSpill finalises the logger's spill file; when remove is true
// (clean shutdown) the file is deleted, since the merged log supersedes
// it.
func (l *Logger) closeSpill(remove bool) {
	if l.sp == nil || l.sp.f == nil {
		return
	}
	l.flushSpillBatch(l.sp)
	l.sp.w.Close()
	l.sp.f.Close()
	if remove {
		os.Remove(l.sp.f.Name())
	}
	l.sp = nil
}

// SpillError reports the first spill-write failure, if any (diagnostics).
func (l *Logger) SpillError() error { return l.spErr }

// Salvage merges the spill fragments of an aborted run into one complete
// CLOG-2 file at out. It reads "<prefix>.defs.spill" plus every
// "<prefix>.rank<r>.spill" it can find, tolerating torn tails, and reports
// how many ranks contributed. The spill files are left in place; callers
// delete them once satisfied.
func Salvage(prefix string, out *os.File) (ranks int, err error) {
	defsF, err := os.Open(spillDefsPath(prefix))
	if err != nil {
		return 0, fmt.Errorf("mpe: salvage needs the defs spill: %w", err)
	}
	defs, _, err := clog2.ReadLenient(defsF)
	defsF.Close()
	if err != nil {
		return 0, fmt.Errorf("mpe: reading defs spill: %w", err)
	}

	w, err := clog2.NewWriter(out, defs.NumRanks)
	if err != nil {
		return 0, err
	}
	if len(defs.Blocks) > 0 {
		if err := w.WriteBlock(0, defs.Blocks[0].Records); err != nil {
			return 0, err
		}
	}
	for r := 0; r < defs.NumRanks; r++ {
		f, err := os.Open(spillRankPath(prefix, r))
		if err != nil {
			continue // rank logged nothing before the abort
		}
		frag, _, err := clog2.ReadLenient(f)
		f.Close()
		if err != nil {
			continue
		}
		// Spill fragments carry one record per block (or one batch per
		// block under SetSpillBatch); coalesce per rank.
		var recs []clog2.Record
		for _, b := range frag.Blocks {
			recs = append(recs, b.Records...)
		}
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time < recs[j].Time })
		if len(recs) == 0 {
			continue
		}
		if err := w.WriteBlock(int32(r), recs); err != nil {
			return 0, err
		}
		ranks++
	}
	return ranks, w.Close()
}

// RemoveSpills deletes every spill file of the prefix family.
func RemoveSpills(prefix string, numRanks int) {
	os.Remove(spillDefsPath(prefix))
	for r := 0; r < numRanks; r++ {
		os.Remove(spillRankPath(prefix, r))
	}
}
