package mpe

import (
	"testing"

	"repro/internal/mpi"
)

// The ISSUE's acceptance gates: with logging disabled the hot-path calls
// must not allocate at all; with logging enabled they must average at
// most one allocation (the amortised arena-chunk refill every
// chunkRecords records — steady state is zero).
func allocLogger(enabled bool) (*Logger, StateID, EventID) {
	w := mpi.NewWorld(1, mpi.Options{})
	g := NewGroup(w, enabled)
	sid := g.DescribeState("PI_Write", "green")
	eid := g.DescribeEvent("MsgDeparture", "white")
	return g.Logger(0), sid, eid
}

func TestDisabledLoggingAllocFree(t *testing.T) {
	l, sid, eid := allocLogger(false)
	var cb Cargo
	cases := []struct {
		name string
		fn   func()
	}{
		{"StateStart", func() { l.StateStart(sid, "line: x.go:1") }},
		{"StateStartBytes", func() { l.StateStartBytes(sid, cb.Reset().KV("line", "x.go:1").Bytes()) }},
		{"StateEnd", func() { l.StateEnd(sid, "") }},
		{"Event", func() { l.Event(eid, "chan: C1 val: 42") }},
		{"EventBytes", func() { l.EventBytes(eid, cb.Reset().KV("chan", "C1").Bytes()) }},
		{"LogSend", func() { l.LogSend(1, 2, 64) }},
		{"LogRecv", func() { l.LogRecv(1, 2, 64) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(200, tc.fn); n != 0 {
			t.Errorf("%s with logging disabled allocates %.2f per run, want 0", tc.name, n)
		}
	}
	if l.Len() != 0 {
		t.Fatalf("disabled logger buffered %d records", l.Len())
	}
}

func TestEnabledLoggingAllocBound(t *testing.T) {
	l, sid, eid := allocLogger(true)
	var cb Cargo
	// Warm the open-state stack so its backing array stops growing.
	for i := 0; i < 8; i++ {
		l.StateStart(sid, "warm")
	}
	for i := 0; i < 8; i++ {
		l.StateEnd(sid, "")
	}
	cases := []struct {
		name string
		fn   func()
	}{
		{"StateStart+End", func() { l.StateStart(sid, "line: x.go:1"); l.StateEnd(sid, "") }},
		{"StateStartBytes+End", func() {
			l.StateStartBytes(sid, cb.Reset().KV("line", "x.go:1").Bytes())
			l.StateEnd(sid, "")
		}},
		{"Event", func() { l.Event(eid, "chan: C1 val: 42") }},
		{"EventBytes", func() { l.EventBytes(eid, cb.Reset().KV("chan", "C1").Str(" val: ").Int(42).Bytes()) }},
		{"LogSend", func() { l.LogSend(1, 2, 64) }},
		{"LogRecv", func() { l.LogRecv(1, 2, 64) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(300, tc.fn); n > 1 {
			t.Errorf("%s with logging enabled allocates %.2f per run, want <= 1", tc.name, n)
		}
	}
}

// The chunk pool makes steady-state logging allocation-free once a
// release has stocked it: run a fill/release cycle, then verify a full
// chunk's worth of appends does not allocate.
func TestArenaRecyclesChunks(t *testing.T) {
	l, sid, _ := allocLogger(true)
	for i := 0; i < chunkRecords; i++ {
		l.StateStart(sid, "fill")
		l.popOpenState()
	}
	got := l.recs.len()
	if got != chunkRecords {
		t.Fatalf("arena holds %d records, want %d", got, chunkRecords)
	}
	l.recs.release()
	if l.recs.len() != 0 {
		t.Fatalf("arena not empty after release")
	}
	if n := testing.AllocsPerRun(chunkRecords-1, func() {
		l.StateStart(sid, "refill")
		l.popOpenState()
	}); n > 0.05 {
		t.Errorf("refill after release allocates %.3f per run, want ~0 (pooled chunks)", n)
	}
}
