package mpe_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/clog2"
	"repro/internal/mpe"
	"repro/internal/mpi"
	"repro/internal/slog2"
)

// abortedRun logs real traffic on every rank of a 3-rank world with
// spilling on, never Finishes (the abort), and returns the group. Each
// rank r writes 2*(r+2) state-half records plus one message record, all
// write-through, so rank r's fragment holds 2*(r+2)+1 segments.
func abortedRun(t testing.TB, prefix string, format int) *mpe.Group {
	t.Helper()
	w := mpi.NewWorld(3, mpi.Options{})
	g := mpe.NewGroup(w, true)
	g.EnableSpill(prefix)
	if format != 0 {
		g.SetSpillFormat(format)
	}
	read := g.DescribeState("PI_Read", "red")
	arrival := g.DescribeEvent("MsgArrival", "yellow")
	if err := g.SpillDefs(); err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 3; rank++ {
		l := g.Logger(rank)
		for i := 0; i < rank+2; i++ {
			l.StateStart(read, "line: lab2.go:57")
			l.StateEnd(read, "")
		}
		l.Event(arrival, "chan: C1")
		if err := l.SpillError(); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func salvageToFile(t testing.TB, prefix string) (*mpe.SalvageReport, []byte) {
	t.Helper()
	var out bytes.Buffer
	rep, err := mpe.SalvageWithReport(prefix, &out)
	if err != nil {
		t.Fatalf("salvage: %v", err)
	}
	return rep, out.Bytes()
}

func TestSalvageReportCleanRun(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "run.clog2")
	abortedRun(t, prefix, 0)
	rep, merged := salvageToFile(t, prefix)
	if !rep.Clean() {
		t.Fatalf("clean run reported dirty:\n%s", rep)
	}
	if rep.RanksRecovered != 3 || rep.NumRanks != 3 || rep.DefsSynthesized {
		t.Fatalf("report: %+v", rep)
	}
	for _, r := range rep.Ranks {
		wantSegs := 2*(r.Rank+2) + 1
		if r.Format != clog2.SpillFormatV2 || r.SegmentsRecovered != wantSegs ||
			r.SegmentsMissing != 0 || r.SegmentsSkipped != 0 ||
			r.SegmentsWritten != int64(wantSegs) || r.BytesQuarantined != 0 {
			t.Fatalf("rank %d accounting: %+v", r.Rank, r)
		}
	}
	if _, err := clog2.Read(bytes.NewReader(merged)); err != nil {
		t.Fatalf("merged log unreadable: %v", err)
	}
	// The report must mention every rank when rendered.
	s := rep.String()
	for _, want := range []string{"rank 0", "rank 1", "rank 2", "3 rank(s)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report text missing %q:\n%s", want, s)
		}
	}
}

// The end-to-end acceptance property: corrupting any single byte of a v2
// rank fragment loses at most the segment holding it — salvage still
// succeeds, the accounting closes (recovered + skipped + missing ==
// written), the other ranks stay complete, and the merged file stays
// readable.
func TestSalvageByteFlipSweep(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "run.clog2")
	abortedRun(t, prefix, 0)
	fragPath := prefix + ".rank1.spill"
	pristine, err := os.ReadFile(fragPath)
	if err != nil {
		t.Fatal(err)
	}
	segs, _ := clog2.ScanSegments(pristine)
	written := len(segs)

	baseRep, _ := salvageToFile(t, prefix)
	var baseRank0 int
	for _, r := range baseRep.Ranks {
		if r.Rank == 0 {
			baseRank0 = r.Records
		}
	}

	for off := 0; off < len(pristine); off++ {
		mut := append([]byte(nil), pristine...)
		mut[off] ^= 0xA5
		if err := os.WriteFile(fragPath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		rep, merged := salvageToFile(t, prefix)
		for _, r := range rep.Ranks {
			switch r.Rank {
			case 1:
				lost := r.SegmentsMissing + r.SegmentsSkipped
				if lost > 1 {
					t.Fatalf("flip at %d lost %d segments", off, lost)
				}
				// The accounting closes against what the scanner can still
				// prove was written (the flip may demote the last segment's
				// seq out of view).
				if int64(r.SegmentsRecovered+r.SegmentsSkipped+r.SegmentsMissing) != r.SegmentsWritten {
					t.Fatalf("flip at %d: accounting open: %+v", off, r)
				}
				if r.SegmentsRecovered < written-1 {
					t.Fatalf("flip at %d recovered only %d of %d segments", off, r.SegmentsRecovered, written)
				}
			case 0:
				if r.Records != baseRank0 || r.SegmentsMissing+r.SegmentsSkipped != 0 {
					t.Fatalf("flip at %d in rank 1 damaged rank 0: %+v", off, r)
				}
			}
		}
		if _, err := clog2.Read(bytes.NewReader(merged)); err != nil {
			t.Fatalf("flip at %d: merged log unreadable: %v", off, err)
		}
	}
	if err := os.WriteFile(fragPath, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
}

// A missing defs spill degrades to synthesized placeholder definitions:
// the salvage still succeeds, warns, and the merged log still converts to
// SLOG-2 with every record categorised (no "no definition" drops).
func TestSalvageSynthesizesDefs(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "run.clog2")
	abortedRun(t, prefix, 0)
	if err := os.Remove(prefix + ".defs.spill"); err != nil {
		t.Fatal(err)
	}
	rep, merged := salvageToFile(t, prefix)
	if !rep.DefsSynthesized {
		t.Fatal("missing defs not reported as synthesized")
	}
	if rep.Clean() {
		t.Fatal("synthesized defs counted as a clean salvage")
	}
	if len(rep.Warnings) == 0 {
		t.Fatal("no warning for missing defs")
	}
	f, err := clog2.Read(bytes.NewReader(merged))
	if err != nil {
		t.Fatalf("merged log unreadable: %v", err)
	}
	if n := len(f.StateDefs()); n != 1 {
		t.Fatalf("synthesized %d state defs, want 1", n)
	}
	sf, srep, err := slog2.Convert(f, slog2.ConvertOptions{})
	if err != nil {
		t.Fatalf("convert: %v", err)
	}
	for _, w := range srep.Warnings {
		if strings.Contains(w, "no definition") {
			t.Fatalf("salvaged records dropped: %v", w)
		}
	}
	// 3 ranks, rank r holds r+2 complete states and one solo event.
	if srep.States != 2+3+4 || srep.Events != 3 {
		t.Fatalf("converted %d states, %d events", srep.States, srep.Events)
	}
	if sf == nil {
		t.Fatal("nil SLOG-2 file")
	}
}

// A corrupted (not just missing) defs spill also degrades to synthesis.
func TestSalvageDamagedDefs(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "run.clog2")
	abortedRun(t, prefix, 0)
	if err := os.WriteFile(prefix+".defs.spill", []byte("scribbled over"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, merged := salvageToFile(t, prefix)
	if !rep.DefsSynthesized {
		t.Fatal("damaged defs not reported as synthesized")
	}
	if _, err := clog2.Read(bytes.NewReader(merged)); err != nil {
		t.Fatalf("merged log unreadable: %v", err)
	}
}

// Legacy v1 fragments (raw CLOG-2 streams) still salvage through the
// version-detecting path.
func TestSalvageLegacyV1(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "run.clog2")
	abortedRun(t, prefix, clog2.SpillFormatV1)
	rep, merged := salvageToFile(t, prefix)
	if rep.RanksRecovered != 3 {
		t.Fatalf("salvaged %d ranks, want 3", rep.RanksRecovered)
	}
	for _, r := range rep.Ranks {
		if r.Format != clog2.SpillFormatV1 {
			t.Fatalf("rank %d detected as format %d", r.Rank, r.Format)
		}
		if r.Damaged() {
			t.Fatalf("clean v1 fragment reported damaged: %+v", r)
		}
	}
	if _, err := clog2.Read(bytes.NewReader(merged)); err != nil {
		t.Fatalf("merged log unreadable: %v", err)
	}
}

// Fragment discovery globs — it finds sparse and very high ranks without
// a probe bound, and ignores files that merely look like fragments.
func TestFindSpillFragments(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "run.clog2")
	for _, name := range []string{
		"run.clog2.rank0.spill", "run.clog2.rank7.spill", "run.clog2.rank4096.spill",
		"run.clog2.rankX.spill", "run.clog2.rank-1.spill", "run.clog2.rank01.spill",
		"run.clog2.defs.spill", "other.clog2.rank3.spill",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	frags := mpe.FindSpillFragments(prefix)
	if len(frags) != 3 {
		t.Fatalf("found %d fragments: %+v", len(frags), frags)
	}
	for i, want := range []int{0, 7, 4096} {
		if frags[i].Rank != want {
			t.Fatalf("fragment %d has rank %d, want %d", i, frags[i].Rank, want)
		}
	}
}

// A fragment from a rank beyond the defs table's world size widens the
// merged file's rank count instead of being dropped — the old bounded
// probe could never even find it.
func TestSalvageHighRankWidensWorld(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "run.clog2")
	abortedRun(t, prefix, 0)
	var payload bytes.Buffer
	rec := clog2.Record{Type: clog2.RecBareEvt, Time: 9.0, Rank: 4096, ID: 0}
	if err := clog2.EncodeBlockPayload(&payload, 4096, []clog2.Record{rec}); err != nil {
		t.Fatal(err)
	}
	frag := clog2.AppendSegment(nil, 4096, 0, payload.Bytes())
	if err := os.WriteFile(prefix+".rank4096.spill", frag, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, merged := salvageToFile(t, prefix)
	if rep.NumRanks != 4097 {
		t.Fatalf("NumRanks = %d, want 4097", rep.NumRanks)
	}
	if rep.RanksRecovered != 4 {
		t.Fatalf("salvaged %d ranks, want 4", rep.RanksRecovered)
	}
	if _, err := clog2.Read(bytes.NewReader(merged)); err != nil {
		t.Fatalf("merged log unreadable: %v", err)
	}
}

// An unreadable fragment (pure garbage) is quarantined wholesale and
// warned about; the other ranks still salvage.
func TestSalvageGarbageFragment(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "run.clog2")
	abortedRun(t, prefix, 0)
	if err := os.WriteFile(prefix+".rank2.spill", bytes.Repeat([]byte{0x5a}, 300), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, merged := salvageToFile(t, prefix)
	if rep.RanksRecovered != 2 {
		t.Fatalf("salvaged %d ranks, want 2", rep.RanksRecovered)
	}
	var r2 *mpe.RankSalvage
	for i := range rep.Ranks {
		if rep.Ranks[i].Rank == 2 {
			r2 = &rep.Ranks[i]
		}
	}
	if r2 == nil || r2.Format != clog2.SpillFormatUnknown || r2.BytesQuarantined != 300 {
		t.Fatalf("garbage fragment accounting: %+v", r2)
	}
	if rep.Clean() {
		t.Fatal("garbage fragment counted as clean")
	}
	if _, err := clog2.Read(bytes.NewReader(merged)); err != nil {
		t.Fatalf("merged log unreadable: %v", err)
	}
}

// The zero-denominator edge in the percentage math: a report with no
// segment accounting at all (empty spill family, fragments that decoded
// to nothing) must report 100% recovered rather than dividing by zero,
// and partial recoveries must render the exact percentage.
func TestSalvageRecoveryPct(t *testing.T) {
	empty := &mpe.SalvageReport{}
	if got := empty.RecoveryPct(); got != 100 {
		t.Errorf("empty report RecoveryPct = %v, want 100", got)
	}
	if s := empty.Summary(); strings.Contains(s, "%") {
		t.Errorf("empty report Summary should not render a percentage: %q", s)
	}

	partial := &mpe.SalvageReport{
		RanksRecovered: 2,
		Ranks: []mpe.RankSalvage{
			{Rank: 0, SegmentsRecovered: 3, SegmentsSkipped: 1},
			{Rank: 1, SegmentsRecovered: 3, SegmentsMissing: 1},
		},
	}
	if got := partial.RecoveryPct(); got != 75 {
		t.Errorf("RecoveryPct = %v, want 75 (6 of 8)", got)
	}
	if s := partial.Summary(); !strings.Contains(s, "75.0% recovered") {
		t.Errorf("Summary missing percentage: %q", s)
	}

	lost := &mpe.SalvageReport{
		Ranks: []mpe.RankSalvage{{Rank: 0, SegmentsMissing: 4}},
	}
	if got := lost.RecoveryPct(); got != 0 {
		t.Errorf("all-lost RecoveryPct = %v, want 0", got)
	}
}
