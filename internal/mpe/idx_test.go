package mpe

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/idx"
	"repro/internal/mpi"
)

// runWorld drives a random logging load through an n-rank world and
// returns the merged CLOG-2 plus the index the merge emitted inline.
func runWorld(t *testing.T, n int, seed int64) ([]byte, *idx.Index) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := mpi.NewWorld(n, mpi.Options{})
	g := NewGroup(w, true)
	sids := []StateID{
		g.DescribeState("A", "red"),
		g.DescribeState("B", "green"),
	}
	eid := g.DescribeEvent("E", "yellow")
	loads := make([]int, n)
	for r := range loads {
		loads[r] = rng.Intn(40)
	}
	var out bytes.Buffer
	var ix *idx.Index
	errs := w.Run(func(r *mpi.Rank) error {
		l := g.Logger(r.ID())
		for i := 0; i < loads[r.ID()]; i++ {
			sid := sids[i%len(sids)]
			l.StateStart(sid, "x")
			l.StateEnd(sid, "")
			if i%4 == 0 {
				l.Event(eid, "e")
			}
		}
		if r.ID() == 0 {
			got, err := l.FinishIndexed(&out)
			ix = got
			return err
		}
		_, err := l.FinishIndexed(nil)
		return err
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	if ix == nil {
		t.Fatal("rank 0 got no inline index")
	}
	return out.Bytes(), ix
}

// The inline index the merge emits must byte-match a from-scratch
// full-scan rebuild of the merged file — the two producers may never
// diverge, whatever the load.
func TestFinishIndexedMatchesRebuild(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		for _, n := range []int{1, 3, 5} {
			raw, inline := runWorld(t, n, seed)
			path := filepath.Join(t.TempDir(), "merge.clog2")
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			rebuilt, err := idx.BuildFile(path)
			if err != nil {
				t.Fatalf("seed %d n %d: %v", seed, n, err)
			}
			if !bytes.Equal(idx.Encode(inline), idx.Encode(rebuilt)) {
				t.Fatalf("seed %d n %d: inline index differs from rebuild:\ninline  %+v\nrebuilt %+v",
					seed, n, inline, rebuilt)
			}
			if inline.TotalRecords == 0 {
				t.Fatalf("seed %d n %d: empty index", seed, n)
			}
		}
	}
}

// FinishFile must leave a valid, loadable sidecar beside the log.
func TestFinishFileWritesSidecar(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.clog2")
	w := mpi.NewWorld(3, mpi.Options{})
	g := NewGroup(w, true)
	sid := g.DescribeState("A", "red")
	errs := w.Run(func(r *mpi.Rank) error {
		l := g.Logger(r.ID())
		l.StateStart(sid, "")
		l.StateEnd(sid, "")
		if r.ID() == 0 {
			return l.FinishFile(path)
		}
		return l.FinishFile("ignored-on-nonzero-ranks")
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	ix, err := idx.Load(path)
	if err != nil {
		t.Fatalf("merge did not leave a valid sidecar: %v", err)
	}
	if ix.NumRanks != 3 || len(ix.Blocks) == 0 {
		t.Errorf("sidecar = %d ranks, %d blocks", ix.NumRanks, len(ix.Blocks))
	}
	if got := idx.Probe(path); got != idx.StatusOK {
		t.Errorf("Probe = %v, want ok", got)
	}
}
