// Package mpe reproduces the Multi-Processing Environment logging library
// that the paper adapts for Pilot: event IDs allocated at initialisation,
// states (paired start/end events) and solo events with name and colour
// properties, per-rank log buffers stamped by each rank's own clock,
// send/receive records that the converter pairs into arrows, clock
// synchronisation to undo drift, and a final collective merge that ships
// every rank's buffer to rank 0 and writes one CLOG-2 file.
//
// Two properties from the paper are deliberately preserved:
//
//   - The merge happens at program end over MPI messages, so the wrap-up
//     cost is paid at termination (measured in Section III.E) and the log
//     is unrecoverably lost if the world aborts first (Section III.B).
//   - Event cargo is limited to 40 bytes, as in MPE.
package mpe

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"repro/internal/clog2"
	"repro/internal/idx"
	"repro/internal/mpi"
)

// StateID names a defined state (a pair of start/end event types).
type StateID int32

// EventID names a defined solo event.
type EventID int32

const soloBase = 1 << 20 // solo etypes live above all state etypes

// MaxStates is the largest allocatable StateID: state s uses etypes 2s and
// 2s+1, which must stay below soloBase or they would collide with solo
// event etypes and silently corrupt the log.
const MaxStates = soloBase/2 - 1

// MaxEvents is the largest allocatable EventID: soloBase+e must fit int32.
const MaxEvents = math.MaxInt32 - soloBase

// SyntheticEndCargo marks a state-end record that Finish fabricated for a
// state still open at wrap-up (a rank that returned early). The converter
// recognises the marker and counts the state as a nesting error instead of
// dropping it or desynchronizing its pairing stack.
const SyntheticEndCargo = "mpe: synthetic end (open at finish)"

func startEtype(s StateID) int32 { return int32(s) * 2 }
func endEtype(s StateID) int32   { return int32(s)*2 + 1 }
func soloEtype(e EventID) int32  { return soloBase + int32(e) }

// IsStartEtype reports whether etype marks a state start, and the state.
func IsStartEtype(etype int32) (StateID, bool) {
	if etype >= soloBase || etype%2 != 0 {
		return 0, false
	}
	return StateID(etype / 2), true
}

// IsEndEtype reports whether etype marks a state end, and the state.
func IsEndEtype(etype int32) (StateID, bool) {
	if etype >= soloBase || etype%2 == 0 {
		return 0, false
	}
	return StateID(etype / 2), true
}

// IsSoloEtype reports whether etype is a solo event, and which.
func IsSoloEtype(etype int32) (EventID, bool) {
	if etype < soloBase {
		return 0, false
	}
	return EventID(etype - soloBase), true
}

// Group owns the logging state for one MPI world: the definition tables
// and one Logger per rank.
type Group struct {
	world   *mpi.World
	enabled bool

	mu     sync.Mutex
	states []def // index = StateID-1
	events []def // index = EventID-1
	// spillPrefix, when non-empty, makes every logger write each record
	// through to an abort-surviving spill file (see spill.go);
	// spillBatch (default 1) sets how many records one spill encode
	// covers (see SetSpillBatch); spillFormat (default 2, framed
	// segments) selects the on-disk format (see SetSpillFormat).
	spillPrefix string
	spillBatch  int
	spillFormat int

	loggers []*Logger
}

type def struct {
	name  string
	color string
}

// NewGroup creates logging state for world. When enabled is false every
// logging call is a no-op, which is the "-pisvc without j" configuration
// used as the overhead baseline.
func NewGroup(world *mpi.World, enabled bool) *Group {
	g := &Group{world: world, enabled: enabled}
	g.loggers = make([]*Logger, world.Size())
	for i := range g.loggers {
		g.loggers[i] = &Logger{g: g, rank: world.Rank(i)}
	}
	return g
}

// Enabled reports whether logging is active.
func (g *Group) Enabled() bool { return g.enabled }

// DescribeState defines a state with display properties and returns its
// ID. Definitions are shared by all ranks (Pilot defines every state once,
// during the configuration phase). Allocating more than MaxStates states
// panics: the next ID's etypes would collide with solo event etypes and
// silently corrupt every log written afterwards.
func (g *Group) DescribeState(name, color string) StateID {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.states) >= MaxStates {
		panic(fmt.Sprintf("mpe: DescribeState(%q): state ID space exhausted (%d states); the next ID's etypes would collide with solo event etypes", name, MaxStates))
	}
	g.states = append(g.states, def{name, color})
	return StateID(len(g.states))
}

// DescribeEvent defines a solo event and returns its ID. Allocating more
// than MaxEvents events panics: the next solo etype would overflow int32.
func (g *Group) DescribeEvent(name, color string) EventID {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.events) >= MaxEvents {
		panic(fmt.Sprintf("mpe: DescribeEvent(%q): event ID space exhausted (%d events); the next solo etype would overflow", name, MaxEvents))
	}
	g.events = append(g.events, def{name, color})
	return EventID(len(g.events))
}

// Logger returns rank's logger.
func (g *Group) Logger(rank int) *Logger { return g.loggers[rank] }

// defRecords renders the definition tables as CLOG-2 records (written in
// rank 0's first block).
func (g *Group) defRecords() []clog2.Record {
	g.mu.Lock()
	defer g.mu.Unlock()
	recs := make([]clog2.Record, 0, len(g.states)+len(g.events))
	for i, d := range g.states {
		id := StateID(i + 1)
		recs = append(recs, clog2.Record{
			Type: clog2.RecStateDef, ID: int32(id),
			Aux1: startEtype(id), Aux2: endEtype(id),
			Color: d.color, Name: d.name,
		})
	}
	for i, d := range g.events {
		id := EventID(i + 1)
		recs = append(recs, clog2.Record{
			Type: clog2.RecEventDef, ID: soloEtype(id),
			Color: d.color, Name: d.name,
		})
	}
	return recs
}

// Logger is one rank's event log. A Logger must only be used from the
// goroutine acting as its rank, mirroring MPE's per-process logging.
type Logger struct {
	g    *Group
	rank *mpi.Rank
	// recs is the chunked record arena: appends never copy records, and
	// the chunks are recycled through a pool at Finish, so steady-state
	// logging allocates nothing.
	recs arena
	// openStates mirrors the converter's pairing stack: states started but
	// not yet ended. Finish closes any leftovers with synthetic ends.
	openStates []StateID

	sp        *spill
	spErr     error
	spChecked bool
	spPrefix  string
	spBatch   int
	// spillArr is the reusable single-record encode buffer for the
	// write-through spill path, so spilling never allocates per record.
	spillArr [1]clog2.Record
	// spPend holds records awaiting a batched spill encode (spBatch > 1).
	spPend []clog2.Record
}

// Rank returns the MPI rank this logger belongs to.
func (l *Logger) Rank() int { return l.rank.ID() }

// Enabled reports whether logging is active for this logger's group.
func (l *Logger) Enabled() bool { return l.g.enabled }

// Len returns the number of buffered records (diagnostics and tests).
func (l *Logger) Len() int { return l.recs.len() }

// Discard drops every buffered record and recycles the arena chunks
// without the collective merge. The overhead harness uses it to keep
// long measurement loops memory-bounded; a real run ends with Finish.
func (l *Logger) Discard() {
	l.recs.release()
	l.openStates = l.openStates[:0]
}

// newRecord hands out the next record slot, stamped with this rank's
// clock. The caller fills the payload fields and then calls commit.
func (l *Logger) newRecord(t clog2.RecType, id int32) *clog2.Record {
	r := l.recs.alloc()
	r.Time = l.rank.Wtime()
	r.Rank = int32(l.rank.ID())
	r.Type = t
	r.ID = id
	return r
}

// commit finishes a record handed out by newRecord: once the payload is
// complete it can be written through to the spill file.
func (l *Logger) commit(r *clog2.Record) {
	if !l.spChecked {
		// EnableSpill happens before any logging (configuration phase),
		// so the prefix and batch size can be cached on first use.
		l.spPrefix = l.g.SpillPrefix()
		l.spBatch = l.g.SpillBatch()
		l.spChecked = true
	}
	if l.spPrefix != "" {
		l.spillRecord(r)
	}
}

// StateStart logs the beginning of an instance of state s. cargo is
// truncated to the MPE 40-byte limit.
func (l *Logger) StateStart(s StateID, cargo string) {
	if !l.g.enabled {
		return
	}
	l.openStates = append(l.openStates, s)
	r := l.newRecord(clog2.RecCargoEvt, startEtype(s))
	r.SetCargo(cargo)
	l.commit(r)
}

// StateStartBytes is StateStart taking the cargo as bytes — the form the
// Pilot call sites use with the Cargo builder, keeping the hot path free
// of string construction.
func (l *Logger) StateStartBytes(s StateID, cargo []byte) {
	if !l.g.enabled {
		return
	}
	l.openStates = append(l.openStates, s)
	r := l.newRecord(clog2.RecCargoEvt, startEtype(s))
	r.SetCargoBytes(cargo)
	l.commit(r)
}

// StateEnd logs the end of an instance of state s.
func (l *Logger) StateEnd(s StateID, cargo string) {
	if !l.g.enabled {
		return
	}
	l.popOpenState()
	r := l.newRecord(clog2.RecCargoEvt, endEtype(s))
	r.SetCargo(cargo)
	l.commit(r)
}

// StateEndBytes is StateEnd taking the cargo as bytes.
func (l *Logger) StateEndBytes(s StateID, cargo []byte) {
	if !l.g.enabled {
		return
	}
	l.popOpenState()
	r := l.newRecord(clog2.RecCargoEvt, endEtype(s))
	r.SetCargoBytes(cargo)
	l.commit(r)
}

// popOpenState pops the innermost open state; a mismatched ID is the
// converter's nesting error to report, but the stack depth still shrinks
// by one.
func (l *Logger) popOpenState() {
	if n := len(l.openStates); n > 0 {
		l.openStates = l.openStates[:n-1]
	}
}

// Event logs a solo event — a bubble in Jumpshot.
func (l *Logger) Event(e EventID, cargo string) {
	if !l.g.enabled {
		return
	}
	r := l.newRecord(clog2.RecCargoEvt, soloEtype(e))
	r.SetCargo(cargo)
	l.commit(r)
}

// EventBytes is Event taking the cargo as bytes.
func (l *Logger) EventBytes(e EventID, cargo []byte) {
	if !l.g.enabled {
		return
	}
	r := l.newRecord(clog2.RecCargoEvt, soloEtype(e))
	r.SetCargoBytes(cargo)
	l.commit(r)
}

// LogSend records the sending half of a message arrow. The converter
// pairs it with a LogRecv carrying the same (peer, tag) — "MPE_Log_send
// and MPE_Log_receive should be called in pairs with matching tag number
// and length of data".
func (l *Logger) LogSend(dst, tag, size int) {
	if !l.g.enabled {
		return
	}
	r := l.newRecord(clog2.RecMsgEvt, 0)
	r.Dir = clog2.DirSend
	r.Aux1, r.Aux2, r.Aux3 = int32(dst), int32(tag), int32(size)
	l.commit(r)
}

// LogRecv records the receiving half of a message arrow.
func (l *Logger) LogRecv(src, tag, size int) {
	if !l.g.enabled {
		return
	}
	r := l.newRecord(clog2.RecMsgEvt, 0)
	r.Dir = clog2.DirRecv
	r.Aux1, r.Aux2, r.Aux3 = int32(src), int32(tag), int32(size)
	l.commit(r)
}

// Clock-sync message tags within mpi.CtxLog.
const (
	tagSyncPing = iota
	tagSyncReply
	tagSyncOffset
	tagCollect
)

const syncRounds = 4

// bufPool recycles the per-rank encode buffers the merge ships over MPI,
// and recordBufPool the decode buffers rank 0 streams blocks into — the
// end-of-run merge reuses both instead of allocating per record.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

var recordBufPool = sync.Pool{New: func() any { return new([]clog2.Record) }}

// Finish is the collective log wrap-up (MPE_Log_sync_clocks followed by
// MPE_Finish_log): every rank must call it. Any state still open (a start
// with no end, e.g. a rank that returned early) is closed with a synthetic
// end stamped at log-final time, as clog2TOslog2 does; the converter
// counts those in Report.NestingErrors. Clocks are synchronised
// against rank 0 by ping-pong offset estimation, each rank shifts its
// buffered timestamps onto rank 0's timebase and records a TimeShift,
// then all buffers travel to rank 0, which writes the single merged
// CLOG-2 file to w (only rank 0's w is used; other ranks may pass nil).
//
// If the world has aborted, Finish fails and the log is lost — the
// behaviour the paper documents for PI_Abort.
func (l *Logger) Finish(w io.Writer) error { return l.finishInto(w, nil) }

// FinishInto is Finish with an index builder riding the merge: as rank 0
// streams each block into w, b records its byte offsets, time fences and
// counts — the inline production of the ".idx" sidecar, at the cost of
// one extra pass over records already in cache and no allocations (b is
// Reset-reused; see the merge benchmarks' with/without-index rows). Only
// rank 0 consults b; other ranks may pass nil.
func (l *Logger) FinishInto(w io.Writer, b *idx.Builder) error { return l.finishInto(w, b) }

// FinishIndexed is Finish returning the index of the file it just wrote
// (rank 0; other ranks get nil). The generation stamp is left zero —
// WriteFileFor fills it when the index is written beside a real file.
func (l *Logger) FinishIndexed(w io.Writer) (*idx.Index, error) {
	if l.rank.ID() != 0 {
		return nil, l.finishInto(nil, nil)
	}
	b := idxBuilderPool.Get().(*idx.Builder)
	b.Reset(l.rank.Size())
	defer idxBuilderPool.Put(b)
	if err := l.finishInto(w, b); err != nil {
		return nil, err
	}
	return b.Index(), nil
}

// idxBuilderPool recycles the merge's index builders, like bufPool does
// the encode buffers: steady-state emission allocates nothing.
var idxBuilderPool = sync.Pool{New: func() any { return idx.NewBuilder(1) }}

func (l *Logger) finishInto(w io.Writer, b *idx.Builder) error {
	// Unwind still-open states innermost-first so the log keeps proper
	// nesting; all synthetic ends share the rank's log-final timestamp.
	for i := len(l.openStates) - 1; i >= 0; i-- {
		r := l.newRecord(clog2.RecCargoEvt, endEtype(l.openStates[i]))
		r.SetCargo(SyntheticEndCargo)
		l.commit(r)
	}
	l.openStates = nil

	offset, err := l.syncClocks()
	if err != nil {
		return fmt.Errorf("mpe: clock sync: %w", err)
	}
	if offset != 0 {
		l.recs.forEach(func(r *clog2.Record) { r.Time -= offset })
	}
	// The timeshift record is metadata stamped at wrap-up; like the old
	// flat-slice path it bypasses the spill (an abort can no longer lose
	// the log at this point anyway).
	ts := l.recs.alloc()
	ts.Type = clog2.RecTimeShift
	ts.Time = l.rank.Wtime() - offset
	ts.Rank = int32(l.rank.ID())
	ts.Shift = offset

	if l.rank.ID() != 0 {
		buf := bufPool.Get().(*bytes.Buffer)
		buf.Reset()
		defer bufPool.Put(buf)
		cw, err := clog2.NewWriter(buf, l.rank.Size())
		if err != nil {
			return err
		}
		// One block per rank, assembled straight from the arena chunks —
		// byte-identical to encoding a flat record slice.
		if err := cw.WriteBlockChunks(int32(l.rank.ID()), l.recs.slices(nil)...); err != nil {
			return err
		}
		if err := cw.Close(); err != nil {
			return err
		}
		if err := l.rank.SendCtx(mpi.CtxLog, 0, tagCollect, buf.Bytes()); err != nil {
			l.closeSpill(false) // keep the fragment; the merge failed
			return err
		}
		l.closeSpill(true) // merged log supersedes the spill
		l.recs.release()
		return nil
	}

	// Rank 0: write definitions + own block, then collect the others.
	if w == nil {
		return fmt.Errorf("mpe: rank 0 Finish needs an output writer")
	}
	cw, err := clog2.NewWriter(w, l.rank.Size())
	if err != nil {
		return err
	}
	chunks := l.recs.slices([][]clog2.Record{l.g.defRecords()})
	if b != nil {
		b.StartBlock(0, cw.Offset())
		for _, c := range chunks {
			b.AddRecords(c)
		}
	}
	if err := cw.WriteBlockChunks(0, chunks...); err != nil {
		return err
	}
	if b != nil {
		b.EndBlock(cw.Offset())
	}
	recBuf := recordBufPool.Get().(*[]clog2.Record)
	defer recordBufPool.Put(recBuf)
	for src := 1; src < l.rank.Size(); src++ {
		m, err := l.rank.RecvCtx(mpi.CtxLog, src, tagCollect)
		if err != nil {
			l.closeSpill(false)
			return fmt.Errorf("mpe: collecting rank %d log: %w", src, err)
		}
		// Stream blocks from the payload straight into the output writer,
		// reusing one pooled record buffer across all ranks and blocks.
		br, err := clog2.NewBlockReader(bytes.NewReader(m.Data))
		if err != nil {
			l.closeSpill(false)
			return fmt.Errorf("mpe: parsing rank %d log: %w", src, err)
		}
		for {
			blk, err := br.NextReuse(*recBuf)
			if err == io.EOF {
				break
			}
			if err != nil {
				l.closeSpill(false)
				return fmt.Errorf("mpe: parsing rank %d log: %w", src, err)
			}
			if cap(blk.Records) > cap(*recBuf) {
				*recBuf = blk.Records
			}
			if b != nil {
				b.StartBlock(blk.Rank, cw.Offset())
				b.AddRecords(blk.Records)
			}
			if err := cw.WriteBlock(blk.Rank, blk.Records); err != nil {
				l.closeSpill(false)
				return err
			}
			if b != nil {
				b.EndBlock(cw.Offset())
			}
		}
	}
	if err := cw.Close(); err != nil {
		l.closeSpill(false)
		return err
	}
	l.closeSpill(true)
	l.recs.release()
	if prefix := l.g.SpillPrefix(); prefix != "" {
		os.Remove(spillDefsPath(prefix))
	}
	return nil
}

// FinishFile is Finish writing to a file path on rank 0, plus the index
// sidecar: the merged CLOG-2 lands at path and its ".idx" lands beside
// it, built inline with the merge. The sidecar is strictly an
// accelerator, so a failure writing it never fails the run — consumers
// fall back to the full scan when it is missing.
func (l *Logger) FinishFile(path string) error {
	if l.rank.ID() != 0 {
		return l.Finish(nil)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	ix, err := l.FinishIndexed(f)
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	_ = idx.WriteFileFor(path, ix) // best-effort: the log itself is complete
	return nil
}

// syncClocks estimates this rank's clock offset relative to rank 0 using
// the ping-pong scheme (several rounds, best RTT wins). Rank 0's offset is
// zero by definition.
func (l *Logger) syncClocks() (float64, error) {
	r := l.rank
	if r.Size() == 1 {
		return 0, nil
	}
	if r.ID() == 0 {
		for peer := 1; peer < r.Size(); peer++ {
			bestRTT := -1.0
			bestOff := 0.0
			for round := 0; round < syncRounds; round++ {
				t0 := r.Wtime()
				if err := r.SendCtx(mpi.CtxLog, peer, tagSyncPing, nil); err != nil {
					return 0, err
				}
				m, err := r.RecvCtx(mpi.CtxLog, peer, tagSyncReply)
				if err != nil {
					return 0, err
				}
				t1 := r.Wtime()
				remote := decodeF64(m.Data)
				rtt := t1 - t0
				if bestRTT < 0 || rtt < bestRTT {
					bestRTT = rtt
					bestOff = remote - (t0+t1)/2
				}
			}
			if err := r.SendCtx(mpi.CtxLog, peer, tagSyncOffset, encodeF64(bestOff)); err != nil {
				return 0, err
			}
		}
		return 0, nil
	}
	for round := 0; round < syncRounds; round++ {
		if _, err := r.RecvCtx(mpi.CtxLog, 0, tagSyncPing); err != nil {
			return 0, err
		}
		if err := r.SendCtx(mpi.CtxLog, 0, tagSyncReply, encodeF64(r.Wtime())); err != nil {
			return 0, err
		}
	}
	m, err := r.RecvCtx(mpi.CtxLog, 0, tagSyncOffset)
	if err != nil {
		return 0, err
	}
	return decodeF64(m.Data), nil
}

func encodeF64(v float64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	return buf[:]
}

func decodeF64(b []byte) float64 {
	if len(b) < 8 {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
