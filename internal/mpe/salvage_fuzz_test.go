package mpe_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/clog2"
	"repro/internal/mpe"
)

// FuzzSalvageFragment throws arbitrary bytes on disk as a rank fragment
// (next to a valid defs spill and one healthy sibling rank) and demands
// that the whole salvage pipeline never panics, never errors, always
// produces a readable CLOG-2 file, and never loses the healthy sibling.
func FuzzSalvageFragment(f *testing.F) {
	// Build the run once; per exec only the four small files are written.
	seedPrefix := filepath.Join(f.TempDir(), "seed.clog2")
	abortedRun(f, seedPrefix, 0)
	readPart := func(suffix string) []byte {
		data, err := os.ReadFile(seedPrefix + suffix)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	defs := readPart(".defs.spill")
	rank0 := readPart(".rank0.spill")
	seed := readPart(".rank1.spill")
	rank2 := readPart(".rank2.spill")

	f.Add(seed)
	f.Add(seed[:len(seed)-7]) // torn tail
	f.Add([]byte{})
	f.Add([]byte("CLOG-R0260 but then lies"))
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		prefix := filepath.Join(t.TempDir(), "run.clog2")
		for _, part := range []struct {
			suffix string
			data   []byte
		}{
			{".defs.spill", defs},
			{".rank0.spill", rank0},
			{".rank1.spill", data},
			{".rank2.spill", rank2},
		} {
			if err := os.WriteFile(prefix+part.suffix, part.data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		var out bytes.Buffer
		rep, err := mpe.SalvageWithReport(prefix, &out)
		if err != nil {
			t.Fatalf("salvage errored on fuzzed fragment: %v", err)
		}
		if _, err := clog2.Read(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("merged log unreadable: %v", err)
		}
		for _, r := range rep.Ranks {
			if r.Rank != 1 && (r.SegmentsMissing > 0 || r.SegmentsSkipped > 0 || r.BytesQuarantined > 0) {
				t.Fatalf("fuzzed rank 1 fragment damaged rank %d: %+v", r.Rank, r)
			}
			if r.Rank == 1 && r.Format == clog2.SpillFormatV2 &&
				int64(r.SegmentsRecovered+r.SegmentsSkipped+r.SegmentsMissing) != r.SegmentsWritten {
				t.Fatalf("accounting open on fuzzed fragment: %+v", r)
			}
		}
	})
}
