package mpe

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/clog2"
)

// Salvage: merging the spill fragments of a dead run back into one
// complete CLOG-2 file. The paper's future-work wish — "it would be
// better if the MPE log could be finalized in all cases" — demands more
// than surviving a polite abort: the fragments on disk after a SIGKILL
// mid-write, a torn page, or bit-rot are exactly the evidence needed to
// debug the death, so salvage must recover everything intact rather than
// discarding from the first damaged byte. v2 fragments (framed,
// checksummed segments) are scanned with resynchronization; v1 fragments
// fall back to the lenient stream reader; a missing or damaged defs
// table degrades to synthesized placeholder definitions instead of
// failing the whole salvage.

// RankSalvage is the per-rank damage accounting of one salvage run. For
// v2 fragments the segment counts close exactly over the sequence-number
// space: Recovered + Skipped + Missing == Written, where Written is the
// lower bound maxSeq+1 established by the highest sequence number seen.
type RankSalvage struct {
	Rank   int
	Path   string
	Format int // clog2.SpillFormatV1/V2, or Unknown for unreadable data

	// SegmentsRecovered counts segments decoded into records (v1: blocks
	// read by the lenient reader).
	SegmentsRecovered int
	// SegmentsSkipped counts frames that validated (CRC) but could not
	// be decoded — a writer bug or version skew, normally zero.
	SegmentsSkipped int
	// SegmentsMissing counts sequence numbers known to have been written
	// (they fall below the highest seq seen) whose segments were lost to
	// damage — the holes the resync scanner jumped over.
	SegmentsMissing int
	// SegmentsWritten is the per-rank lower bound on segments the dead
	// run wrote: maxSeq+1, or 0 when no segment survived.
	SegmentsWritten int64

	// BytesQuarantined and DamagedRegions summarise the bytes belonging
	// to no valid segment; TailTorn marks a fragment that ends inside
	// damage (the torn final write of a SIGKILL).
	BytesQuarantined int64
	DamagedRegions   int
	TailTorn         bool

	// Records is how many records this rank contributed to the merged
	// log.
	Records int

	// Note carries a human-readable problem ("unreadable: ...", "empty"),
	// empty for a healthy fragment.
	Note string
}

// Damaged reports whether this rank's fragment shows any loss or damage.
func (r *RankSalvage) Damaged() bool {
	return r.SegmentsSkipped > 0 || r.SegmentsMissing > 0 ||
		r.BytesQuarantined > 0 || r.Format == clog2.SpillFormatUnknown
}

// SalvageReport is the full account of one salvage run.
type SalvageReport struct {
	Prefix string
	// NumRanks is the rank count written into the merged file header.
	NumRanks int
	// Ranks holds one entry per discovered fragment, ascending by rank.
	Ranks []RankSalvage
	// RanksRecovered counts ranks that contributed at least one record.
	RanksRecovered int
	// DefsSynthesized is set when the defs spill was missing or damaged
	// and placeholder state/event definitions were generated from the
	// etypes observed in the fragments.
	DefsSynthesized bool
	// Warnings collects non-fatal problems (missing defs, unreadable
	// fragments) in discovery order.
	Warnings []string
}

// Totals sums the per-rank segment accounting.
func (rep *SalvageReport) Totals() (recovered, skipped, missing int, quarantined int64) {
	for i := range rep.Ranks {
		r := &rep.Ranks[i]
		recovered += r.SegmentsRecovered
		skipped += r.SegmentsSkipped
		missing += r.SegmentsMissing
		quarantined += r.BytesQuarantined
	}
	return
}

// RecoveryPct returns the recovered share of the segment accounting as a
// percentage in [0,100]. The denominator is every segment the report
// knows about (recovered + skipped + missing); a report with no segment
// accounting at all — an empty spill family, or fragments that decoded
// to nothing — has nothing to lose and reports 100, never dividing by
// zero.
func (rep *SalvageReport) RecoveryPct() float64 {
	rec, skip, miss, _ := rep.Totals()
	total := rec + skip + miss
	if total <= 0 {
		return 100
	}
	return 100 * float64(rec) / float64(total)
}

// Clean reports a full recovery: real defs, and no rank lost a segment
// or quarantined a byte. (A v1 fragment without its end-log marker is
// still clean — that is the normal shape of a write-through spill.)
func (rep *SalvageReport) Clean() bool {
	if rep.DefsSynthesized {
		return false
	}
	for i := range rep.Ranks {
		if rep.Ranks[i].Damaged() {
			return false
		}
	}
	return true
}

// Summary renders the one-line form used in warnings and tool output.
func (rep *SalvageReport) Summary() string {
	rec, skip, miss, quar := rep.Totals()
	s := fmt.Sprintf("%d rank(s), %d segment(s) recovered", rep.RanksRecovered, rec)
	if skip+miss > 0 {
		s += fmt.Sprintf(", %d skipped, %d missing (%.1f%% recovered)", skip, miss, rep.RecoveryPct())
	}
	if quar > 0 {
		s += fmt.Sprintf(", %d byte(s) quarantined", quar)
	}
	if rep.DefsSynthesized {
		s += ", defs synthesized"
	}
	return s
}

// String renders the full per-rank report.
func (rep *SalvageReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "salvage report for %s: %s\n", rep.Prefix, rep.Summary())
	for i := range rep.Ranks {
		r := &rep.Ranks[i]
		fmt.Fprintf(&b, "  rank %d (v%d): %d recovered", r.Rank, r.Format, r.SegmentsRecovered)
		if r.Format == clog2.SpillFormatV2 {
			fmt.Fprintf(&b, " / %d skipped / %d missing of %d written",
				r.SegmentsSkipped, r.SegmentsMissing, r.SegmentsWritten)
		}
		fmt.Fprintf(&b, ", %d record(s)", r.Records)
		if r.BytesQuarantined > 0 {
			fmt.Fprintf(&b, ", %d byte(s) quarantined in %d region(s)", r.BytesQuarantined, r.DamagedRegions)
		}
		if r.TailTorn {
			b.WriteString(", tail torn")
		}
		if r.Note != "" {
			fmt.Fprintf(&b, " (%s)", r.Note)
		}
		b.WriteByte('\n')
	}
	for _, w := range rep.Warnings {
		fmt.Fprintf(&b, "  warning: %s\n", w)
	}
	return strings.TrimRight(b.String(), "\n")
}

// SpillFragment is one discovered per-rank spill file.
type SpillFragment struct {
	Rank int
	Path string
}

// globEscape backslash-escapes filepath.Glob metacharacters, so a spill
// prefix containing '*', '?' or '[' globs literally.
func globEscape(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '*', '?', '[', '\\':
			b.WriteByte('\\')
		}
		b.WriteRune(c)
	}
	return b.String()
}

// FindSpillFragments discovers the per-rank fragments of a spill family
// by globbing "<prefix>.rank*.spill" — no bounded rank probe, so rank
// 4096's fragment is found as surely as rank 0's. Results are ascending
// by rank.
func FindSpillFragments(prefix string) []SpillFragment {
	matches, err := filepath.Glob(globEscape(prefix) + ".rank*.spill")
	if err != nil {
		return nil
	}
	frags := make([]SpillFragment, 0, len(matches))
	for _, m := range matches {
		mid := strings.TrimSuffix(strings.TrimPrefix(m, prefix+".rank"), ".spill")
		rank, err := strconv.Atoi(mid)
		if err != nil || rank < 0 || strconv.Itoa(rank) != mid {
			continue // not a rank fragment (e.g. "rankX.spill")
		}
		frags = append(frags, SpillFragment{Rank: rank, Path: m})
	}
	sort.Slice(frags, func(i, j int) bool { return frags[i].Rank < frags[j].Rank })
	return frags
}

// salvageFragment recovers one rank fragment's records and fills its
// accounting.
func salvageFragment(rank int, path string, data []byte) ([]clog2.Record, RankSalvage) {
	rs := RankSalvage{Rank: rank, Path: path}
	if len(data) == 0 {
		rs.Note = "empty"
		return nil, rs
	}
	switch clog2.DetectSpillFormat(data) {
	case clog2.SpillFormatV1:
		rs.Format = clog2.SpillFormatV1
		frag, complete, err := clog2.ReadLenient(bytes.NewReader(data))
		if err != nil {
			rs.Format = clog2.SpillFormatUnknown
			rs.BytesQuarantined = int64(len(data))
			rs.DamagedRegions = 1
			rs.TailTorn = true
			rs.Note = "unreadable: " + err.Error()
			return nil, rs
		}
		var recs []clog2.Record
		for _, b := range frag.Blocks {
			recs = append(recs, b.Records...)
		}
		rs.SegmentsRecovered = len(frag.Blocks)
		rs.TailTorn = !complete
		rs.Records = len(recs)
		return recs, rs

	case clog2.SpillFormatV2:
		rs.Format = clog2.SpillFormatV2
		segs, stats := clog2.ScanSegments(data)
		rs.BytesQuarantined = stats.BytesQuarantined
		rs.DamagedRegions = stats.DamagedRegions
		rs.TailTorn = stats.TailTorn
		var recs []clog2.Record
		seen := make(map[uint64]bool, len(segs))
		maxSeq := int64(-1)
		for _, seg := range segs {
			if seen[seg.Seq] {
				continue // duplicate frame; first occurrence won
			}
			seen[seg.Seq] = true
			if int64(seg.Seq) > maxSeq {
				maxSeq = int64(seg.Seq)
			}
			block, err := clog2.DecodeBlockPayload(seg.Payload)
			if err != nil || int(seg.Rank) != rank || int(block.Rank) != rank {
				rs.SegmentsSkipped++
				continue
			}
			rs.SegmentsRecovered++
			recs = append(recs, block.Records...)
		}
		rs.SegmentsWritten = maxSeq + 1
		rs.SegmentsMissing = int(rs.SegmentsWritten) - rs.SegmentsRecovered - rs.SegmentsSkipped
		rs.Records = len(recs)
		return recs, rs

	default:
		rs.Format = clog2.SpillFormatUnknown
		rs.BytesQuarantined = int64(len(data))
		rs.DamagedRegions = 1
		rs.TailTorn = true
		rs.Note = "unrecognized spill data"
		return nil, rs
	}
}

// loadSpillDefs reads the defs spill, in either format. It returns the
// definition records and the world size the defs file recorded; a
// missing or damaged file returns no records and a warning note.
func loadSpillDefs(prefix string) (defs []clog2.Record, numRanks int, note string) {
	data, err := os.ReadFile(spillDefsPath(prefix))
	if err != nil {
		return nil, 0, "defs spill unreadable: " + err.Error()
	}
	var inner []byte
	switch clog2.DetectSpillFormat(data) {
	case clog2.SpillFormatV1:
		inner = data
	case clog2.SpillFormatV2:
		segs, _ := clog2.ScanSegments(data)
		if len(segs) == 0 {
			return nil, 0, "defs spill damaged: no intact segment"
		}
		inner = segs[0].Payload
	default:
		return nil, 0, "defs spill damaged: unrecognized data"
	}
	f, _, err := clog2.ReadLenient(bytes.NewReader(inner))
	if err != nil {
		return nil, 0, "defs spill damaged: " + err.Error()
	}
	for _, b := range f.Blocks {
		defs = append(defs, b.Records...)
	}
	return defs, f.NumRanks, ""
}

// synthesizeDefs fabricates placeholder state and event definitions for
// every etype observed in the salvaged records, so the timeline still
// converts when the defs spill is lost: states render as gray
// "salvaged state N" rectangles, solo events as white bubbles. The real
// names died with the defs table; the activity did not.
func synthesizeDefs(perRank map[int][]clog2.Record) []clog2.Record {
	states := map[StateID]bool{}
	events := map[EventID]bool{}
	for _, recs := range perRank {
		for i := range recs {
			r := &recs[i]
			if r.Type != clog2.RecBareEvt && r.Type != clog2.RecCargoEvt {
				continue
			}
			if sid, ok := IsStartEtype(r.ID); ok {
				states[sid] = true
			} else if sid, ok := IsEndEtype(r.ID); ok {
				states[sid] = true
			} else if eid, ok := IsSoloEtype(r.ID); ok {
				events[eid] = true
			}
		}
	}
	sids := make([]StateID, 0, len(states))
	for sid := range states {
		sids = append(sids, sid)
	}
	sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
	eids := make([]EventID, 0, len(events))
	for eid := range events {
		eids = append(eids, eid)
	}
	sort.Slice(eids, func(i, j int) bool { return eids[i] < eids[j] })

	defs := make([]clog2.Record, 0, len(sids)+len(eids))
	for _, sid := range sids {
		defs = append(defs, clog2.Record{
			Type: clog2.RecStateDef, ID: int32(sid),
			Aux1: startEtype(sid), Aux2: endEtype(sid),
			Color: "gray", Name: fmt.Sprintf("salvaged state %d", sid),
		})
	}
	for _, eid := range eids {
		defs = append(defs, clog2.Record{
			Type: clog2.RecEventDef, ID: soloEtype(eid),
			Color: "white", Name: fmt.Sprintf("salvaged event %d", eid),
		})
	}
	return defs
}

// SalvageWithReport merges the spill fragments of a dead run into one
// complete CLOG-2 file written to out, and reports exactly what was
// recovered, skipped and lost. Fragments are discovered by globbing, so
// no rank is out of range; v1 and v2 fragments may be mixed (an old
// run's leftovers next to a new run's); a missing or damaged defs spill
// degrades to synthesized definitions with a warning instead of an
// error. The spill files are left in place; callers delete them once
// satisfied.
//
// The error is non-nil only when nothing at all could be salvaged or the
// output could not be written.
func SalvageWithReport(prefix string, out io.Writer) (*SalvageReport, error) {
	rep := &SalvageReport{Prefix: prefix}

	perRank := map[int][]clog2.Record{}
	maxRank := -1
	for _, frag := range FindSpillFragments(prefix) {
		data, err := os.ReadFile(frag.Path)
		if err != nil {
			rep.Ranks = append(rep.Ranks, RankSalvage{
				Rank: frag.Rank, Path: frag.Path,
				Note: "unreadable: " + err.Error(),
			})
			rep.Warnings = append(rep.Warnings, fmt.Sprintf("rank %d fragment unreadable: %v", frag.Rank, err))
			continue
		}
		recs, rs := salvageFragment(frag.Rank, frag.Path, data)
		rep.Ranks = append(rep.Ranks, rs)
		if rs.Note != "" && rs.Note != "empty" {
			rep.Warnings = append(rep.Warnings, fmt.Sprintf("rank %d: %s", frag.Rank, rs.Note))
		}
		if len(recs) > 0 {
			perRank[frag.Rank] = recs
			if frag.Rank > maxRank {
				maxRank = frag.Rank
			}
		}
	}

	defs, defsRanks, note := loadSpillDefs(prefix)
	if note != "" {
		rep.Warnings = append(rep.Warnings, note)
	}
	if len(defs) == 0 {
		if len(perRank) == 0 {
			return rep, fmt.Errorf("mpe: nothing to salvage under %s: no defs spill and no rank fragments", prefix)
		}
		defs = synthesizeDefs(perRank)
		rep.DefsSynthesized = true
		rep.Warnings = append(rep.Warnings,
			fmt.Sprintf("definitions synthesized from observed etypes (%d defs); state and event names were lost with the defs spill", len(defs)))
	}

	numRanks := defsRanks
	if maxRank+1 > numRanks {
		numRanks = maxRank + 1
	}
	if numRanks < 1 {
		numRanks = 1
	}
	rep.NumRanks = numRanks

	w, err := clog2.NewWriter(out, numRanks)
	if err != nil {
		return rep, err
	}
	if err := w.WriteBlock(0, defs); err != nil {
		return rep, err
	}
	ranks := make([]int, 0, len(perRank))
	for rank := range perRank {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	for _, rank := range ranks {
		recs := perRank[rank]
		// Spill fragments carry one batch per segment/block; coalesce per
		// rank, ordered by timestamp (stable, so equal stamps keep their
		// original sequence and cannot desync state pairing).
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time < recs[j].Time })
		if err := w.WriteBlock(int32(rank), recs); err != nil {
			return rep, err
		}
		rep.RanksRecovered++
	}
	return rep, w.Close()
}

// Salvage merges the spill fragments of an aborted run into one complete
// CLOG-2 file at out and reports how many ranks contributed. It is the
// report-free form of SalvageWithReport.
func Salvage(prefix string, out *os.File) (ranks int, err error) {
	rep, err := SalvageWithReport(prefix, out)
	if err != nil {
		return 0, err
	}
	return rep.RanksRecovered, nil
}

// RemoveSpills deletes every spill file of the prefix family. Fragments
// are discovered by globbing; the numRanks argument is kept for
// compatibility and ignored.
func RemoveSpills(prefix string, numRanks int) {
	_ = numRanks
	os.Remove(spillDefsPath(prefix))
	for _, frag := range FindSpillFragments(prefix) {
		os.Remove(frag.Path)
	}
}
