package mpe

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/clog2"
)

// legacyCargo is the Sprintf-then-truncate path every Pilot call site
// used before the builders: format, then cut at the 40-byte limit.
func legacyCargo(format string, args ...any) string {
	s := fmt.Sprintf(format, args...)
	if len(s) > clog2.MaxCargo {
		s = s[:clog2.MaxCargo]
	}
	return s
}

// Golden-cargo: for every call-site shape in internal/core, the builder
// chain must produce byte-identical cargo to the old Sprintf format.
// (ASCII inputs only: at the exact 40-byte boundary the builders drop a
// straddling rune whole where the old path cut bytes — that deliberate
// divergence is covered by clog2's rune-safety test.)
func TestCargoBuildersMatchSprintf(t *testing.T) {
	long := strings.Repeat("x", 50) // forces truncation through both paths
	cases := []struct {
		name  string
		want  string
		build func(c *Cargo) []byte
	}{
		{"PI_Write/PI_Read state",
			legacyCargo("line: %s proc: %s idx: %d", "main.go:10", "PI_MAIN", 3),
			func(c *Cargo) []byte {
				return c.KV("line", "main.go:10").KV("proc", "PI_MAIN").Str(" idx: ").Int(3).Bytes()
			}},
		{"PI_Write state truncated",
			legacyCargo("line: %s proc: %s idx: %d", "averylongfilename_test.go:12345", long, 42),
			func(c *Cargo) []byte {
				return c.KV("line", "averylongfilename_test.go:12345").KV("proc", long).Str(" idx: ").Int(42).Bytes()
			}},
		{"MsgDeparture",
			legacyCargo("chan: %s %s", "C2", "val: 42"),
			func(c *Cargo) []byte {
				return c.KV("chan", "C2").Str(" ").Raw([]byte("val: 42")).Bytes()
			}},
		{"MsgArrival read",
			legacyCargo("chan: %s msg: %d/%d", "C2", 1, 2),
			func(c *Cargo) []byte {
				return c.KV("chan", "C2").Str(" msg: ").Int(1).Str("/").Int(2).Bytes()
			}},
		{"MsgArrival collective part",
			legacyCargo("chan: %s part: %d/%d", "gatherer", 3, 16),
			func(c *Cargo) []byte {
				return c.KV("chan", "gatherer").Str(" part: ").Int(3).Str("/").Int(16).Bytes()
			}},
		{"PI_ChannelHasData",
			legacyCargo("chan: %s has: %v line: %s", "C9", true, "poll.go:7"),
			func(c *Cargo) []byte {
				return c.KV("chan", "C9").Str(" has: ").Bool(true).KV("line", "poll.go:7").Bytes()
			}},
		{"PI_ChannelHasData false",
			legacyCargo("chan: %s has: %v line: %s", "C9", false, "poll.go:8"),
			func(c *Cargo) []byte {
				return c.KV("chan", "C9").Str(" has: ").Bool(false).KV("line", "poll.go:8").Bytes()
			}},
		{"PI_Log",
			legacyCargo("line: %s %s", "app.go:33", "checkpoint reached"),
			func(c *Cargo) []byte {
				return c.KV("line", "app.go:33").Str(" ").Str("checkpoint reached").Bytes()
			}},
		{"PI_StartTime",
			legacyCargo("t: %.6f line: %s", 12.3456789, "app.go:40"),
			func(c *Cargo) []byte {
				return c.Str("t: ").Float(12.3456789, 6).KV("line", "app.go:40").Bytes()
			}},
		{"PI_EndTime negative clock",
			legacyCargo("t: %.6f line: %s", -0.25, "app.go:41"),
			func(c *Cargo) []byte {
				return c.Str("t: ").Float(-0.25, 6).KV("line", "app.go:41").Bytes()
			}},
		{"collective state",
			legacyCargo("line: %s proc: %s bund: %s", "bcast.go:5", "P4", "B2"),
			func(c *Cargo) []byte {
				return c.KV("line", "bcast.go:5").KV("proc", "P4").KV("bund", "B2").Bytes()
			}},
		{"PI_Select end",
			legacyCargo("ready: %d", 7),
			func(c *Cargo) []byte { return c.Str("ready: ").Int(7).Bytes() }},
		{"PI_TrySelect",
			legacyCargo("bund: %s ready: %d line: %s", "B1", -1, "sel.go:3"),
			func(c *Cargo) []byte {
				return c.KV("bund", "B1").Str(" ready: ").Int(-1).KV("line", "sel.go:3").Bytes()
			}},
		{"Compute start",
			legacyCargo("proc: %s idx: %d", "P2", 1),
			func(c *Cargo) []byte { return c.KV("proc", "P2").Str(" idx: ").Int(1).Bytes() }},
		{"Compute end",
			legacyCargo("status: %d", 0),
			func(c *Cargo) []byte { return c.Str("status: ").Int(0).Bytes() }},
	}
	for _, tc := range cases {
		var c Cargo
		if got := string(tc.build(&c)); got != tc.want {
			t.Errorf("%s: builder = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// The free-function builders respect the cargo bound no matter how much
// is appended, and reuse of a Cargo via Reset starts clean.
func TestCargoBuilderBounds(t *testing.T) {
	var c Cargo
	for i := 0; i < 20; i++ {
		c.KV("key", "value").Int(1234567890)
	}
	if n := len(c.Bytes()); n != clog2.MaxCargo {
		t.Fatalf("overfull cargo length %d, want %d", n, clog2.MaxCargo)
	}
	if got := string(c.Reset().Str("fresh").Bytes()); got != "fresh" {
		t.Fatalf("after Reset: %q", got)
	}
	dst := AppendFloat(nil, 3.25, 2)
	if string(dst) != "3.25" {
		t.Fatalf("AppendFloat = %q", dst)
	}
	if got := string(AppendKV(nil, "line", "a.go:1")); got != "line: a.go:1" {
		t.Fatalf("AppendKV on empty = %q", got)
	}
	if got := string(AppendKV([]byte("x"), "line", "a.go:1")); got != "x line: a.go:1" {
		t.Fatalf("AppendKV on non-empty = %q", got)
	}
}
