package mpe

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/clog2"
	"repro/internal/mpi"
)

func TestSpillWritesThrough(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "run.clog2")
	w := mpi.NewWorld(2, mpi.Options{})
	g := NewGroup(w, true)
	g.EnableSpill(prefix)
	sid := g.DescribeState("PI_Write", "green")
	if err := g.SpillDefs(); err != nil {
		t.Fatal(err)
	}

	l := g.Logger(1)
	l.StateStart(sid, "line: a.go:1")
	l.StateEnd(sid, "")
	if err := l.SpillError(); err != nil {
		t.Fatal(err)
	}

	// The spill is already on disk, before any Finish.
	f, err := os.Open(prefix + ".rank1.spill")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	frag, complete, err := clog2.ReadLenient(f)
	if err != nil {
		t.Fatal(err)
	}
	if complete {
		t.Error("open spill should not be a complete file yet")
	}
	var n int
	for _, b := range frag.Blocks {
		n += len(b.Records)
	}
	if n != 2 {
		t.Fatalf("spill has %d records, want 2", n)
	}
}

func TestSalvageMergesFragments(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "run.clog2")
	w := mpi.NewWorld(3, mpi.Options{})
	g := NewGroup(w, true)
	g.EnableSpill(prefix)
	sid := g.DescribeState("PI_Read", "red")
	if err := g.SpillDefs(); err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 3; rank++ {
		l := g.Logger(rank)
		for i := 0; i < rank+1; i++ {
			l.StateStart(sid, "x")
			l.StateEnd(sid, "")
		}
		l.LogSend(0, 1, 8)
	}
	// Abort: no Finish ever runs; salvage straight from the fragments.
	w.Rank(0).Abort(1)

	outPath := prefix + ".salvaged"
	out, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	ranks, err := Salvage(prefix, out)
	if err != nil {
		t.Fatal(err)
	}
	out.Close()
	if ranks != 3 {
		t.Fatalf("salvaged %d ranks, want 3", ranks)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := clog2.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("salvaged log unreadable: %v", err)
	}
	if len(merged.StateDefs()) != 1 {
		t.Fatalf("defs lost: %d", len(merged.StateDefs()))
	}
	var cargo, msgs int
	for _, rec := range merged.Records() {
		switch rec.Type {
		case clog2.RecCargoEvt:
			cargo++
		case clog2.RecMsgEvt:
			msgs++
		}
	}
	if cargo != 2*(1+2+3) || msgs != 3 {
		t.Fatalf("salvaged %d cargo + %d msg records", cargo, msgs)
	}
}

func TestSalvageNeedsDefs(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "missing")
	out, err := os.Create(prefix + ".out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if _, err := Salvage(prefix, out); err == nil {
		t.Fatal("salvage without defs spill succeeded")
	}
}

func TestCleanFinishRemovesSpills(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "run.clog2")
	w := mpi.NewWorld(2, mpi.Options{})
	g := NewGroup(w, true)
	g.EnableSpill(prefix)
	sid := g.DescribeState("S", "red")
	if err := g.SpillDefs(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	errs := w.Run(func(r *mpi.Rank) error {
		l := g.Logger(r.ID())
		l.StateStart(sid, "")
		l.StateEnd(sid, "")
		if r.ID() == 0 {
			return l.Finish(&buf)
		}
		return l.Finish(nil)
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	for _, path := range []string{
		prefix + ".defs.spill", prefix + ".rank0.spill", prefix + ".rank1.spill",
	} {
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("spill %s survives a clean finish", path)
		}
	}
	if _, err := clog2.Read(&buf); err != nil {
		t.Fatalf("merged log unreadable: %v", err)
	}
}

func TestRemoveSpills(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "x")
	for _, p := range []string{spillDefsPath(prefix), spillRankPath(prefix, 0), spillRankPath(prefix, 1)} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	RemoveSpills(prefix, 2)
	for _, p := range []string{spillDefsPath(prefix), spillRankPath(prefix, 0), spillRankPath(prefix, 1)} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("%s not removed", p)
		}
	}
}
