package mpe

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/clog2"
	"repro/internal/mpi"
)

// readV2Fragment scans a v2 spill fragment and decodes every segment's
// records; missing file or no records yields an empty slice.
func readV2Fragment(t testing.TB, path string) []clog2.Record {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	segs, _ := clog2.ScanSegments(data)
	var recs []clog2.Record
	for _, s := range segs {
		b, err := clog2.DecodeBlockPayload(s.Payload)
		if err != nil {
			t.Fatalf("segment seq=%d undecodable: %v", s.Seq, err)
		}
		recs = append(recs, b.Records...)
	}
	return recs
}

func TestSpillWritesThrough(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "run.clog2")
	w := mpi.NewWorld(2, mpi.Options{})
	g := NewGroup(w, true)
	g.EnableSpill(prefix)
	sid := g.DescribeState("PI_Write", "green")
	if err := g.SpillDefs(); err != nil {
		t.Fatal(err)
	}

	l := g.Logger(1)
	l.StateStart(sid, "line: a.go:1")
	l.StateEnd(sid, "")
	if err := l.SpillError(); err != nil {
		t.Fatal(err)
	}

	// The spill is already on disk, before any Finish — and it is a clean
	// v2 segment stream.
	data, err := os.ReadFile(prefix + ".rank1.spill")
	if err != nil {
		t.Fatal(err)
	}
	if got := clog2.DetectSpillFormat(data); got != clog2.SpillFormatV2 {
		t.Fatalf("spill format = %d, want v2", got)
	}
	if _, stats := clog2.ScanSegments(data); !stats.Clean() {
		t.Fatalf("open spill scans dirty: %+v", stats)
	}
	if n := len(readV2Fragment(t, prefix+".rank1.spill")); n != 2 {
		t.Fatalf("spill has %d records, want 2", n)
	}
}

// SetSpillFormat(1) keeps writing the legacy raw CLOG-2 stream, readable
// by the lenient v1 reader.
func TestSpillFormatV1Legacy(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "run.clog2")
	w := mpi.NewWorld(2, mpi.Options{})
	g := NewGroup(w, true)
	g.EnableSpill(prefix)
	g.SetSpillFormat(1)
	sid := g.DescribeState("PI_Write", "green")
	if err := g.SpillDefs(); err != nil {
		t.Fatal(err)
	}
	l := g.Logger(1)
	l.StateStart(sid, "line: a.go:1")
	l.StateEnd(sid, "")
	if err := l.SpillError(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(prefix + ".rank1.spill")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	frag, complete, err := clog2.ReadLenient(f)
	if err != nil {
		t.Fatal(err)
	}
	if complete {
		t.Error("open spill should not be a complete file yet")
	}
	var n int
	for _, b := range frag.Blocks {
		n += len(b.Records)
	}
	if n != 2 {
		t.Fatalf("spill has %d records, want 2", n)
	}
	// Nonsense formats clamp to the default.
	g2 := NewGroup(mpi.NewWorld(1, mpi.Options{}), true)
	g2.SetSpillFormat(7)
	if got := g2.SpillFormat(); got != clog2.SpillFormatV2 {
		t.Errorf("SetSpillFormat(7) -> %d, want v2", got)
	}
}

// With SetSpillBatch(n) records are held until a full batch can be
// encoded as one block: n-1 records stay pending (at risk, by contract),
// the n-th lands the whole batch on disk, and Finish-time closeSpill
// flushes any remainder.
func TestSpillBatchAmortisesWrites(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "run.clog2")
	w := mpi.NewWorld(2, mpi.Options{})
	g := NewGroup(w, true)
	g.EnableSpill(prefix)
	g.SetSpillBatch(4)
	sid := g.DescribeState("PI_Write", "green")
	if err := g.SpillDefs(); err != nil {
		t.Fatal(err)
	}

	countSpilled := func() int {
		return len(readV2Fragment(t, prefix+".rank1.spill"))
	}

	l := g.Logger(1)
	for i := 0; i < 3; i++ {
		l.StateStart(sid, "line: a.go:1")
		l.popOpenState()
	}
	if err := l.SpillError(); err != nil {
		t.Fatal(err)
	}
	if n := countSpilled(); n != 0 {
		t.Fatalf("partial batch already spilled %d records, want 0 on disk", n)
	}
	l.StateStart(sid, "line: a.go:2") // 4th record completes the batch
	l.popOpenState()
	if n := countSpilled(); n != 4 {
		t.Fatalf("full batch spilled %d records, want 4", n)
	}
	// Two more stay pending until closeSpill flushes the remainder.
	l.StateStart(sid, "line: a.go:3")
	l.popOpenState()
	l.StateStart(sid, "line: a.go:4")
	l.popOpenState()
	if n := countSpilled(); n != 4 {
		t.Fatalf("pending tail already on disk: %d records", n)
	}
	l.closeSpill(false)
	if n := countSpilled(); n != 6 {
		t.Fatalf("after closeSpill %d records, want 6", n)
	}
}

// SetSpillBatch clamps nonsense values to the write-through default.
func TestSpillBatchClamped(t *testing.T) {
	w := mpi.NewWorld(1, mpi.Options{})
	g := NewGroup(w, true)
	for _, n := range []int{0, -3} {
		g.SetSpillBatch(n)
		if got := g.SpillBatch(); got != 1 {
			t.Errorf("SetSpillBatch(%d) -> %d, want 1", n, got)
		}
	}
	g.SetSpillBatch(64)
	if got := g.SpillBatch(); got != 64 {
		t.Errorf("SetSpillBatch(64) -> %d", got)
	}
}

func TestSalvageMergesFragments(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "run.clog2")
	w := mpi.NewWorld(3, mpi.Options{})
	g := NewGroup(w, true)
	g.EnableSpill(prefix)
	sid := g.DescribeState("PI_Read", "red")
	if err := g.SpillDefs(); err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 3; rank++ {
		l := g.Logger(rank)
		for i := 0; i < rank+1; i++ {
			l.StateStart(sid, "x")
			l.StateEnd(sid, "")
		}
		l.LogSend(0, 1, 8)
	}
	// Abort: no Finish ever runs; salvage straight from the fragments.
	w.Rank(0).Abort(1)

	outPath := prefix + ".salvaged"
	out, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	ranks, err := Salvage(prefix, out)
	if err != nil {
		t.Fatal(err)
	}
	out.Close()
	if ranks != 3 {
		t.Fatalf("salvaged %d ranks, want 3", ranks)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := clog2.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("salvaged log unreadable: %v", err)
	}
	if len(merged.StateDefs()) != 1 {
		t.Fatalf("defs lost: %d", len(merged.StateDefs()))
	}
	var cargo, msgs int
	for _, rec := range merged.Records() {
		switch rec.Type {
		case clog2.RecCargoEvt:
			cargo++
		case clog2.RecMsgEvt:
			msgs++
		}
	}
	if cargo != 2*(1+2+3) || msgs != 3 {
		t.Fatalf("salvaged %d cargo + %d msg records", cargo, msgs)
	}
}

// Salvage with neither a defs spill nor any rank fragment has nothing to
// work with and must say so. (A missing defs spill alone degrades to
// synthesized definitions — see salvage_test.go.)
func TestSalvageNothingToSalvage(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "missing")
	out, err := os.Create(prefix + ".out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if _, err := Salvage(prefix, out); err == nil {
		t.Fatal("salvage with nothing on disk succeeded")
	}
}

func TestCleanFinishRemovesSpills(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "run.clog2")
	w := mpi.NewWorld(2, mpi.Options{})
	g := NewGroup(w, true)
	g.EnableSpill(prefix)
	sid := g.DescribeState("S", "red")
	if err := g.SpillDefs(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	errs := w.Run(func(r *mpi.Rank) error {
		l := g.Logger(r.ID())
		l.StateStart(sid, "")
		l.StateEnd(sid, "")
		if r.ID() == 0 {
			return l.Finish(&buf)
		}
		return l.Finish(nil)
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	for _, path := range []string{
		prefix + ".defs.spill", prefix + ".rank0.spill", prefix + ".rank1.spill",
	} {
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("spill %s survives a clean finish", path)
		}
	}
	if _, err := clog2.Read(&buf); err != nil {
		t.Fatalf("merged log unreadable: %v", err)
	}
}

func TestRemoveSpills(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "x")
	for _, p := range []string{spillDefsPath(prefix), spillRankPath(prefix, 0), spillRankPath(prefix, 1)} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	RemoveSpills(prefix, 2)
	for _, p := range []string{spillDefsPath(prefix), spillRankPath(prefix, 0), spillRankPath(prefix, 1)} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("%s not removed", p)
		}
	}
}
