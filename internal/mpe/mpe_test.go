package mpe

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/clog2"
	"repro/internal/mpi"
)

func TestEtypeMapping(t *testing.T) {
	s := StateID(7)
	if st, ok := IsStartEtype(startEtype(s)); !ok || st != s {
		t.Errorf("IsStartEtype(start(7)) = %v %v", st, ok)
	}
	if st, ok := IsEndEtype(endEtype(s)); !ok || st != s {
		t.Errorf("IsEndEtype(end(7)) = %v %v", st, ok)
	}
	if _, ok := IsStartEtype(endEtype(s)); ok {
		t.Error("end etype classified as start")
	}
	e := EventID(3)
	if ev, ok := IsSoloEtype(soloEtype(e)); !ok || ev != e {
		t.Errorf("IsSoloEtype = %v %v", ev, ok)
	}
	if _, ok := IsSoloEtype(startEtype(s)); ok {
		t.Error("state etype classified as solo")
	}
}

func TestDisabledGroupLogsNothing(t *testing.T) {
	w := mpi.NewWorld(1, mpi.Options{})
	g := NewGroup(w, false)
	l := g.Logger(0)
	sid := g.DescribeState("PI_Read", "red")
	l.StateStart(sid, "x")
	l.StateEnd(sid, "")
	l.LogSend(0, 1, 2)
	l.LogRecv(0, 1, 2)
	l.Event(g.DescribeEvent("e", "yellow"), "")
	if l.Len() != 0 {
		t.Fatalf("disabled logger buffered %d records", l.Len())
	}
	if g.Enabled() || l.Enabled() {
		t.Fatal("Enabled() reports true for disabled group")
	}
}

// End-to-end: two ranks log states and a message, Finish merges to one
// CLOG-2 file containing definitions, both blocks, and timeshifts.
func TestFinishMergesAllRanks(t *testing.T) {
	w := mpi.NewWorld(3, mpi.Options{})
	g := NewGroup(w, true)
	sidRead := g.DescribeState("PI_Read", "red")
	sidWrite := g.DescribeState("PI_Write", "green")
	evArrive := g.DescribeEvent("MsgArrival", "yellow")

	var out bytes.Buffer
	errs := w.Run(func(r *mpi.Rank) error {
		l := g.Logger(r.ID())
		switch r.ID() {
		case 0:
			l.StateStart(sidWrite, "line: 10")
			l.LogSend(1, 5, 64)
			if err := r.Send(1, 5, make([]byte, 64)); err != nil {
				return err
			}
			l.StateEnd(sidWrite, "")
		case 1:
			l.StateStart(sidRead, "line: 20")
			if _, err := r.Recv(0, 5); err != nil {
				return err
			}
			l.LogRecv(0, 5, 64)
			l.Event(evArrive, "chan: C1")
			l.StateEnd(sidRead, "")
		}
		var dst *bytes.Buffer
		if r.ID() == 0 {
			dst = &out
		}
		if dst == nil {
			return l.Finish(nil)
		}
		return l.Finish(dst)
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}

	f, err := clog2.Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRanks != 3 {
		t.Fatalf("NumRanks = %d", f.NumRanks)
	}
	if got := len(f.StateDefs()); got != 2 {
		t.Fatalf("state defs = %d, want 2", got)
	}
	if got := len(f.EventDefs()); got != 1 {
		t.Fatalf("event defs = %d, want 1", got)
	}
	// One block per rank (rank 2 logged nothing but still has a timeshift).
	ranksSeen := map[int32]bool{}
	var sends, recvs, shifts, cargo int
	for _, b := range f.Blocks {
		ranksSeen[b.Rank] = true
		for _, rec := range b.Records {
			switch rec.Type {
			case clog2.RecMsgEvt:
				if rec.Dir == clog2.DirSend {
					sends++
				} else {
					recvs++
				}
			case clog2.RecTimeShift:
				shifts++
			case clog2.RecCargoEvt:
				cargo++
			}
		}
	}
	if len(ranksSeen) != 3 {
		t.Fatalf("blocks for ranks %v, want all 3", ranksSeen)
	}
	if sends != 1 || recvs != 1 {
		t.Fatalf("sends=%d recvs=%d, want 1/1", sends, recvs)
	}
	if shifts != 3 {
		t.Fatalf("timeshift records = %d, want 3", shifts)
	}
	if cargo != 5 { // 2 starts + 2 ends + 1 solo
		t.Fatalf("cargo events = %d, want 5", cargo)
	}
}

// With skewed rank clocks, Finish must land all timestamps on rank 0's
// timebase: the receive of a message may never appear earlier than its
// send by more than the sync error.
func TestFinishSynchronisesClocks(t *testing.T) {
	base := clock.NewReal()
	w := mpi.NewWorld(2, mpi.Options{
		Clocks: []clock.Source{
			base,
			clock.NewSkewed(base, -2.5, 0, 0), // rank 1's clock is 2.5 s behind
		},
	})
	g := NewGroup(w, true)
	sid := g.DescribeState("PI_Write", "green")

	var out bytes.Buffer
	errs := w.Run(func(r *mpi.Rank) error {
		l := g.Logger(r.ID())
		if r.ID() == 0 {
			l.LogSend(1, 1, 8)
			if err := r.Send(1, 1, make([]byte, 8)); err != nil {
				return err
			}
			l.StateStart(sid, "")
			l.StateEnd(sid, "")
			return l.Finish(&out)
		}
		if _, err := r.Recv(0, 1); err != nil {
			return err
		}
		l.LogRecv(0, 1, 8)
		return l.Finish(nil)
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}

	f, err := clog2.Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	var sendT, recvT float64 = -1, -1
	var shift1 float64
	for _, rec := range f.Records() {
		if rec.Type == clog2.RecMsgEvt && rec.Dir == clog2.DirSend {
			sendT = rec.Time
		}
		if rec.Type == clog2.RecMsgEvt && rec.Dir == clog2.DirRecv {
			recvT = rec.Time
		}
		if rec.Type == clog2.RecTimeShift && rec.Rank == 1 {
			shift1 = rec.Shift
		}
	}
	if sendT < 0 || recvT < 0 {
		t.Fatal("missing msg events")
	}
	if math.Abs(shift1-(-2.5)) > 0.05 {
		t.Fatalf("rank 1 timeshift = %v, want ~-2.5", shift1)
	}
	if recvT < sendT-0.05 {
		t.Fatalf("after sync, recv time %v precedes send time %v", recvT, sendT)
	}
}

func TestFinishRankZeroNeedsWriter(t *testing.T) {
	w := mpi.NewWorld(1, mpi.Options{})
	g := NewGroup(w, true)
	if err := g.Logger(0).Finish(nil); err == nil {
		t.Fatal("rank 0 Finish(nil) succeeded")
	}
}

// The paper's PI_Abort problem: once the world is aborted, the MPE log
// cannot be collected.
func TestLogLostOnAbort(t *testing.T) {
	w := mpi.NewWorld(2, mpi.Options{})
	g := NewGroup(w, true)
	sid := g.DescribeState("PI_Write", "green")
	g.Logger(0).StateStart(sid, "")
	w.Rank(1).Abort(3)
	var out bytes.Buffer
	err := g.Logger(0).Finish(&out)
	if !errors.Is(err, mpi.ErrAborted) {
		t.Fatalf("Finish after abort: %v, want ErrAborted", err)
	}
	if out.Len() > 0 {
		// A partial header may have been written before the failure was
		// detected, but it must not parse as a complete file.
		if _, err := clog2.Read(bytes.NewReader(out.Bytes())); err == nil {
			t.Fatal("aborted run still produced a readable log")
		}
	}
}

func TestCargoTruncatedAtLimit(t *testing.T) {
	w := mpi.NewWorld(1, mpi.Options{})
	g := NewGroup(w, true)
	sid := g.DescribeState("S", "red")
	l := g.Logger(0)
	l.StateStart(sid, strings.Repeat("y", 100))
	var out bytes.Buffer
	if err := l.Finish(&out); err != nil {
		t.Fatal(err)
	}
	f, err := clog2.Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range f.Records() {
		if rec.Type == clog2.RecCargoEvt && len(rec.CargoText()) > clog2.MaxCargo {
			t.Fatalf("cargo %d bytes exceeds MPE limit", len(rec.CargoText()))
		}
	}
}

func TestTimestampsNondecreasingPerRank(t *testing.T) {
	w := mpi.NewWorld(1, mpi.Options{})
	g := NewGroup(w, true)
	sid := g.DescribeState("S", "red")
	l := g.Logger(0)
	for i := 0; i < 100; i++ {
		l.StateStart(sid, "")
		l.StateEnd(sid, "")
	}
	var out bytes.Buffer
	if err := l.Finish(&out); err != nil {
		t.Fatal(err)
	}
	f, err := clog2.Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, rec := range f.Records() {
		if rec.Type == clog2.RecStateDef || rec.Type == clog2.RecEventDef {
			continue
		}
		if rec.Time < prev {
			t.Fatalf("time went backwards: %v after %v", rec.Time, prev)
		}
		prev = rec.Time
	}
}

func TestFinishFileWritesToDisk(t *testing.T) {
	w := mpi.NewWorld(2, mpi.Options{})
	g := NewGroup(w, true)
	path := t.TempDir() + "/test.clog2"
	errs := w.Run(func(r *mpi.Rank) error {
		l := g.Logger(r.ID())
		if r.ID() == 0 {
			return l.FinishFile(path)
		}
		return l.FinishFile("ignored-on-nonzero-ranks")
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	b, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clog2.Read(bytes.NewReader(b)); err != nil {
		t.Fatalf("written file unreadable: %v", err)
	}
}

func readFile(path string) ([]byte, error) { return os.ReadFile(path) }

// Regression at the ID-space boundary: state etypes must never reach
// soloBase, or starts/ends would collide with solo event etypes and
// silently corrupt the log.
func TestDescribeStateBoundaryGuard(t *testing.T) {
	// The arithmetic the guard protects: the last legal ID's etypes stay
	// below soloBase, the first illegal ID's start etype IS a solo etype.
	if e := endEtype(StateID(MaxStates)); e >= soloBase {
		t.Fatalf("endEtype(MaxStates) = %d, reaches soloBase %d", e, soloBase)
	}
	if _, ok := IsSoloEtype(startEtype(StateID(MaxStates + 1))); !ok {
		t.Fatalf("startEtype(MaxStates+1) = %d should collide with solo etypes", startEtype(StateID(MaxStates+1)))
	}

	w := mpi.NewWorld(1, mpi.Options{})
	g := NewGroup(w, true)
	// Jump to one below the boundary, then allocate the last legal ID.
	g.states = make([]def, MaxStates-1)
	sid := g.DescribeState("last-legal", "red")
	if sid != StateID(MaxStates) {
		t.Fatalf("last legal StateID = %d, want %d", sid, MaxStates)
	}
	if got, ok := IsStartEtype(startEtype(sid)); !ok || got != sid {
		t.Fatalf("etype roundtrip broken at boundary: %v %v", got, ok)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("DescribeState beyond MaxStates did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "state ID space exhausted") {
			t.Fatalf("panic message %q lacks a clear explanation", r)
		}
	}()
	g.DescribeState("one-too-many", "red")
}

func TestDescribeEventBoundary(t *testing.T) {
	// Materializing MaxEvents defs (~2 billion) is not feasible in a test,
	// so verify the boundary arithmetic the guard encodes: the last legal
	// EventID's solo etype is exactly MaxInt32, one more would overflow.
	if got := soloEtype(EventID(MaxEvents)); got != math.MaxInt32 {
		t.Fatalf("soloEtype(MaxEvents) = %d, want MaxInt32", got)
	}
	if eid, ok := IsSoloEtype(soloEtype(EventID(MaxEvents))); !ok || eid != EventID(MaxEvents) {
		t.Fatalf("solo etype roundtrip broken at boundary: %v %v", eid, ok)
	}
}

// A state left open at Finish (a rank that returns early) must not vanish
// or desynchronize the converter: Finish emits a synthetic end at
// log-final time, marked so the converter counts it as a nesting error.
func TestFinishSyntheticEndForOpenState(t *testing.T) {
	w := mpi.NewWorld(2, mpi.Options{})
	g := NewGroup(w, true)
	sidA := g.DescribeState("A", "red")
	sidB := g.DescribeState("B", "green")
	var out bytes.Buffer
	errs := w.Run(func(r *mpi.Rank) error {
		l := g.Logger(r.ID())
		if r.ID() == 1 {
			// Nested opens, neither ever closed.
			l.StateStart(sidA, "outer")
			l.StateStart(sidB, "inner")
			return l.Finish(nil)
		}
		l.StateStart(sidA, "x")
		l.StateEnd(sidA, "")
		return l.Finish(&out)
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	f, err := clog2.Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	var synth []clog2.Record
	for _, rec := range f.Records() {
		if rec.CargoText() == SyntheticEndCargo {
			synth = append(synth, rec)
		}
	}
	if len(synth) != 2 {
		t.Fatalf("%d synthetic ends, want 2", len(synth))
	}
	// Innermost-first: B's end must precede A's end in the block.
	if sid, ok := IsEndEtype(synth[0].ID); !ok || sid != sidB {
		t.Fatalf("first synthetic end closes state %v, want inner %v", sid, sidB)
	}
	if sid, ok := IsEndEtype(synth[1].ID); !ok || sid != sidA {
		t.Fatalf("second synthetic end closes state %v, want outer %v", sid, sidA)
	}
	if synth[0].Rank != 1 || synth[1].Rank != 1 {
		t.Fatalf("synthetic ends on wrong rank: %+v", synth)
	}
}

// A matched start/end pair must leave no open-state tracking behind, so a
// clean log gains no synthetic records.
func TestFinishNoSyntheticEndWhenBalanced(t *testing.T) {
	w := mpi.NewWorld(1, mpi.Options{})
	g := NewGroup(w, true)
	sid := g.DescribeState("A", "red")
	var out bytes.Buffer
	errs := w.Run(func(r *mpi.Rank) error {
		l := g.Logger(0)
		for i := 0; i < 5; i++ {
			l.StateStart(sid, "x")
			l.StateEnd(sid, "")
		}
		return l.Finish(&out)
	})
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	f, err := clog2.Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range f.Records() {
		if rec.CargoText() == SyntheticEndCargo {
			t.Fatalf("balanced log contains synthetic end: %+v", rec)
		}
	}
}
