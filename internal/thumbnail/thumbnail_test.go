package thumbnail

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jpeglite"
	"repro/vis"
)

func smallConfig(t *testing.T, workers int, services string) Config {
	t.Helper()
	dir := t.TempDir()
	return Config{
		Workers:   workers,
		NumImages: 12,
		ImageW:    64,
		ImageH:    48,
		Quality:   70,
		Seed:      42,
		Core: core.Config{
			Services:     services,
			CheckLevel:   3,
			JumpshotPath: filepath.Join(dir, "thumb.clog2"),
			NativePath:   filepath.Join(dir, "thumb.log"),
			ArrowSpread:  -1,
		},
	}
}

func TestPipelineProducesAllThumbnails(t *testing.T) {
	res, err := Run(smallConfig(t, 3, ""))
	if err != nil {
		t.Fatal(err)
	}
	if res.Thumbnails != 12 {
		t.Fatalf("thumbnails = %d, want 12", res.Thumbnails)
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time measured")
	}
	if res.OutputBytes <= 0 || res.InputBytes <= 0 {
		t.Error("byte counters empty")
	}
	// Thumbnails must be much smaller than inputs (32% area / every 3rd
	// pixel / recompressed).
	if res.OutputBytes >= res.InputBytes {
		t.Errorf("thumbnails (%d B) not smaller than inputs (%d B)", res.OutputBytes, res.InputBytes)
	}
}

func TestPipelineWritesToDisk(t *testing.T) {
	cfg := smallConfig(t, 2, "")
	cfg.OutDir = t.TempDir()
	cfg.NumImages = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(cfg.OutDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("wrote %d files, want 5", len(entries))
	}
	// Each written thumbnail decodes, with the expected dimensions.
	data, err := os.ReadFile(filepath.Join(cfg.OutDir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	im, err := jpeglite.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if im.W <= 0 || im.W >= 64 || im.H <= 0 || im.H >= 48 {
		t.Errorf("thumbnail dims %dx%d not reduced from 64x48", im.W, im.H)
	}
	_ = res
}

// The paper's Fig. 1 property: with -pisvc=j, a complex run of thousands
// of Pilot calls converts from CLOG-2 to SLOG-2 without conversion
// errors, and compute dominates I/O (Fig. 2: "most of the execution time
// is used for computation").
func TestPipelineVisualLogClean(t *testing.T) {
	cfg := smallConfig(t, 3, "j")
	cfg.NumImages = 30
	cfg.ImageW, cfg.ImageH = 128, 96
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WrapUp <= 0 {
		t.Error("no wrap-up time measured with MPE logging on")
	}
	f, rep, err := vis.ConvertFile(cfg.Core.JumpshotPath, vis.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NestingErrors != 0 || rep.UnmatchedSends != 0 || rep.UnmatchedRecvs != 0 {
		t.Fatalf("conversion not clean: %+v", rep)
	}
	if rep.States < 100 {
		t.Errorf("only %d states for a 30-image run", rep.States)
	}
	frac := vis.CategoryFraction(f, "Compute", f.Start, f.End)
	if frac < 0.5 {
		t.Errorf("compute fraction %.2f; pipeline should be compute-dominated", frac)
	}
	// Every rank timeline present: main + C + 3 Ds.
	legend := vis.Legend(f, f.Start, f.End)
	for _, e := range legend {
		if e.Name == "Compute" && e.Count != 5 {
			t.Errorf("compute states = %d, want 5", e.Count)
		}
	}
}

// Scaling shape: doubling workers speeds the pipeline up. This is the
// backbone of the Section III.E table (14.42 s at 10 workers vs 30.97 s
// at 5).
func TestPipelineScalesWithWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	mk := func(w int) Config {
		cfg := smallConfig(t, w, "")
		cfg.NumImages = 40
		cfg.ImageW, cfg.ImageH = 160, 120
		// Think-time stage model: raw DCT work cannot show wall-clock
		// speedup on a single-core machine (see DESIGN.md substitutions).
		cfg.StageDelay = 4 * time.Millisecond
		return cfg
	}
	r1, err := Run(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(mk(4))
	if err != nil {
		t.Fatal(err)
	}
	if r4.Elapsed >= r1.Elapsed {
		t.Errorf("4 workers (%v) not faster than 1 (%v)", r4.Elapsed, r1.Elapsed)
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Workers != 1 || cfg.NumImages != 1 || cfg.ImageW == 0 || cfg.Quality == 0 {
		t.Fatalf("defaults: %+v", cfg)
	}
}
