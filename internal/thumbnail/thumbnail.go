// Package thumbnail implements the paper's demonstration application
// (Section III.D): a task-parallel pipeline that turns a batch of JPEG
// files into thumbnails. PI_MAIN reads each image and ships it to the
// next available decompressor D_i; each D decompresses, crops out the
// centre 32% of the pixel array and downsamples to every third pixel; the
// single compressor C re-encodes the thumbnail and ships it back to
// PI_MAIN, the only process permitted to do disk I/O. The application
// scales by adding data-parallel D processes, the most time-consuming
// stage — which is what makes it the paper's overhead-measurement workload
// (Section III.E).
package thumbnail

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/jpeglite"
)

// Config sizes one pipeline run.
type Config struct {
	// Workers is the number of decompressor processes D_i.
	Workers int
	// NumImages is the batch size (the paper used 1058 files; benches
	// scale this down).
	NumImages int
	// ImageW/ImageH are the synthetic source dimensions (default 192×128).
	ImageW, ImageH int
	// Quality is the codec quality for both source and thumbnails.
	Quality int
	// Seed varies the synthetic images.
	Seed int64
	// OutDir, when non-empty, makes PI_MAIN write each thumbnail to disk
	// as the paper's application does.
	OutDir string
	// StageDelay adds per-image think time: each decompression sleeps
	// StageDelay and each compression StageDelay/10, on top of the real
	// codec work. On machines with fewer cores than the paper's cluster
	// this is what lets the pipeline's *wall-clock* scaling behave like
	// the paper's (goroutines burning one shared core cannot speed up;
	// sleeping stages can overlap). Zero keeps the workload purely
	// CPU-bound.
	StageDelay time.Duration
	// Core carries the Pilot options (services, check level, log paths).
	// NumProcs is computed from Workers and may be left zero.
	Core core.Config
}

// CropFraction and DownsampleStep are the paper's constants: "cropping
// out the center 32% of the pixel array, and then down-sampling ... every
// third one".
const (
	CropFraction   = 0.32
	DownsampleStep = 3
)

// Result reports one run.
type Result struct {
	// Elapsed is the execution time excluding the MPE wrap-up, matching
	// how Section III.E reports times ("this disregards log wrap-up
	// time").
	Elapsed time.Duration
	// WrapUp is the MPE log collection/merge/write cost at termination.
	WrapUp time.Duration
	// Thumbnails is the number produced (must equal NumImages).
	Thumbnails int
	// InputBytes and OutputBytes measure the compression pipeline.
	InputBytes, OutputBytes int
	// Runtime gives access to the finished Pilot runtime (log paths,
	// deadlock report) for inspection.
	Runtime *core.Runtime
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.NumImages < 1 {
		c.NumImages = 1
	}
	if c.ImageW == 0 {
		c.ImageW = 192
	}
	if c.ImageH == 0 {
		c.ImageH = 128
	}
	if c.Quality == 0 {
		c.Quality = 75
	}
	return c
}

// Run executes the pipeline and returns its measurements.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()

	// Pre-generate the "JPEG files". Generation is setup, not pipeline
	// work, so it happens before timing starts.
	images := make([][]byte, cfg.NumImages)
	var inputBytes int
	for i := range images {
		im := jpeglite.Synthetic(cfg.ImageW, cfg.ImageH, cfg.Seed+int64(i))
		images[i] = jpeglite.Encode(im, cfg.Quality)
		inputBytes += len(images[i])
	}

	cc := cfg.Core
	cc.NumProcs = 2 + cfg.Workers // PI_MAIN + C + D_1..D_W
	if cc.HasService(core.SvcNativeLog) || cc.HasService(core.SvcDeadlock) {
		cc.NumProcs++
	}
	r, err := core.NewRuntime(cc)
	if err != nil {
		return nil, err
	}

	var (
		toD     = make([]*core.Channel, cfg.Workers) // main -> D_i: job images
		ready   = make([]*core.Channel, cfg.Workers) // D_i -> main: idle token
		dToC    = make([]*core.Channel, cfg.Workers) // D_i -> C: raw pixels
		cToMain *core.Channel                        // C -> main: thumbnails
	)

	compressor := func(self *core.Self, index int, arg any) int {
		self.SetName("C")
		done := 0
		sel := arg.(*core.Bundle)
		for done < cfg.Workers {
			idx, err := sel.Select()
			if err != nil {
				return 1
			}
			var w, h int
			var pix []byte
			if err := dToC[idx].Read("%d %d %^c", &w, &h, &pix); err != nil {
				return 1
			}
			if w < 0 { // termination marker from D_idx
				done++
				continue
			}
			im := &jpeglite.Image{W: w, H: h, Pix: pix}
			data := jpeglite.Encode(im, cfg.Quality)
			if cfg.StageDelay > 0 {
				time.Sleep(cfg.StageDelay / 10)
			}
			if err := cToMain.Write("%^c", data); err != nil {
				return 1
			}
		}
		return 0
	}

	decompressor := func(self *core.Self, index int, arg any) int {
		self.SetName(fmt.Sprintf("D%d", index+1))
		for {
			if err := ready[index].Write("%d", index); err != nil {
				return 1
			}
			var data []byte
			if err := toD[index].Read("%^c", &data); err != nil {
				return 1
			}
			if len(data) == 0 { // no more work
				if err := dToC[index].Write("%d %d %^c", -1, 0, []byte{}); err != nil {
					return 1
				}
				return 0
			}
			im, err := jpeglite.Decode(data)
			if err != nil {
				self.Abort(2, fmt.Sprintf("undecodable image: %v", err))
				return 1
			}
			thumb := im.CropCenter(CropFraction).Downsample(DownsampleStep)
			if cfg.StageDelay > 0 {
				time.Sleep(cfg.StageDelay)
			}
			if err := dToC[index].Write("%d %d %^c", thumb.W, thumb.H, thumb.Pix); err != nil {
				return 1
			}
		}
	}

	// Configuration phase: C first (rank 1), then the D_i (ranks 2..W+1),
	// matching the paper's Fig. 1 rank layout.
	cproc, err := r.CreateProcess(compressor, 0, nil)
	if err != nil {
		return nil, err
	}
	dprocs := make([]*core.Process, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		if dprocs[i], err = r.CreateProcess(decompressor, i, nil); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		if toD[i], err = r.CreateChannel(r.MainProc(), dprocs[i]); err != nil {
			return nil, err
		}
		if ready[i], err = r.CreateChannel(dprocs[i], r.MainProc()); err != nil {
			return nil, err
		}
		if dToC[i], err = r.CreateChannel(dprocs[i], cproc); err != nil {
			return nil, err
		}
		toD[i].SetName(fmt.Sprintf("job%d", i+1))
		ready[i].SetName(fmt.Sprintf("idle%d", i+1))
	}
	if cToMain, err = r.CreateChannel(cproc, r.MainProc()); err != nil {
		return nil, err
	}
	cToMain.SetName("thumbs")
	readyBundle, err := r.CreateBundle(core.UsageSelect, ready...)
	if err != nil {
		return nil, err
	}
	readyBundle.SetName("idleD")
	cSelect, err := r.CreateBundle(core.UsageSelect, dToC...)
	if err != nil {
		return nil, err
	}
	cSelect.SetName("fromD")
	// Hand the compressor its select bundle.
	cprocArgFix(cproc, cSelect)

	start := time.Now()
	if _, err := r.StartAll(); err != nil {
		return nil, err
	}

	res := &Result{Runtime: r}
	sent, received := 0, 0
	for received < cfg.NumImages {
		// Prefer draining finished thumbnails so channel buffers stay
		// small; otherwise dispatch to the next available worker.
		if has, err := cToMain.HasData(); err == nil && has {
			if err := collectOne(cToMain, cfg, res, received); err != nil {
				return nil, err
			}
			received++
			continue
		}
		if sent < cfg.NumImages {
			idx, err := readyBundle.Select()
			if err != nil {
				return nil, err
			}
			var widx int
			if err := ready[idx].Read("%d", &widx); err != nil {
				return nil, err
			}
			if err := toD[idx].Write("%^c", images[sent]); err != nil {
				return nil, err
			}
			sent++
			continue
		}
		if err := collectOne(cToMain, cfg, res, received); err != nil {
			return nil, err
		}
		received++
	}
	// Shut the pipeline down: consume each D's final idle token and send
	// the empty terminator job.
	for i := 0; i < cfg.Workers; i++ {
		var widx int
		if err := ready[i].Read("%d", &widx); err != nil {
			return nil, err
		}
		if err := toD[i].Write("%^c", []byte{}); err != nil {
			return nil, err
		}
	}
	if err := r.StopMain(0); err != nil {
		return nil, err
	}
	res.WrapUp = r.WrapUpTime()
	res.Elapsed = time.Since(start) - res.WrapUp
	res.Thumbnails = received
	res.InputBytes = inputBytes
	return res, nil
}

// collectOne receives one finished thumbnail and optionally writes it to
// disk (PI_MAIN is the only process doing disk I/O).
func collectOne(cToMain *core.Channel, cfg Config, res *Result, idx int) error {
	var thumb []byte
	if err := cToMain.Read("%^c", &thumb); err != nil {
		return err
	}
	res.OutputBytes += len(thumb)
	if cfg.OutDir != "" {
		path := filepath.Join(cfg.OutDir, fmt.Sprintf("thumb%05d.jplt", idx))
		if err := os.WriteFile(path, thumb, 0o644); err != nil {
			return fmt.Errorf("thumbnail: writing %s: %w", path, err)
		}
	}
	return nil
}

// cprocArgFix stores the select bundle as the compressor's work-function
// argument after bundle creation (processes are created before bundles in
// the configuration phase).
func cprocArgFix(p *core.Process, b *core.Bundle) { p.SetArg(b) }
