// Package jpeglite is a small, self-contained lossy image codec standing
// in for libjpeg in the paper's thumbnail demonstration application. It
// follows the JPEG recipe — 8×8 block DCT, quantisation, zigzag ordering,
// run-length coding — on 8-bit grayscale images, giving the pipeline's
// decompressor and compressor stages genuinely CPU-bound work so the
// visual log shows long gray Compute states with narrow red/green I/O,
// exactly the shape of the paper's Figs. 1–2.
//
// The format is not JPEG-compatible; it only needs to be real work with
// real compression behaviour.
package jpeglite

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Image is an 8-bit grayscale image in row-major order.
type Image struct {
	W, H int
	Pix  []byte // len == W*H
}

// NewImage allocates a black W×H image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]byte, w*h)}
}

// At returns the pixel at (x, y).
func (im *Image) At(x, y int) byte { return im.Pix[y*im.W+x] }

// Set writes the pixel at (x, y).
func (im *Image) Set(x, y int, v byte) { im.Pix[y*im.W+x] = v }

// Synthetic generates a deterministic test image: a gradient plus
// sinusoidal texture plus hash noise, varied by seed so every "photo" in a
// batch differs.
func Synthetic(w, h int, seed int64) *Image {
	im := NewImage(w, h)
	fs := float64(seed%97) + 3
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g := 128 + 60*math.Sin(float64(x)/fs) + 50*math.Cos(float64(y)/(fs*0.7))
			g += 40 * math.Sin(float64(x+y)/23)
			n := hash2(uint64(x)+uint64(seed)<<20, uint64(y)) % 17
			v := g + float64(n) - 8
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			im.Set(x, y, byte(v))
		}
	}
	return im
}

func hash2(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 ^ b*0xc2b2ae3d27d4eb4f
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}

// CropCenter returns the centred sub-image containing the given fraction
// of the original pixel area (the thumbnail app crops "the center 32% of
// the pixel array").
func (im *Image) CropCenter(areaFrac float64) *Image {
	if areaFrac <= 0 || areaFrac > 1 {
		areaFrac = 1
	}
	scale := math.Sqrt(areaFrac)
	cw := int(float64(im.W) * scale)
	ch := int(float64(im.H) * scale)
	if cw < 1 {
		cw = 1
	}
	if ch < 1 {
		ch = 1
	}
	x0 := (im.W - cw) / 2
	y0 := (im.H - ch) / 2
	out := NewImage(cw, ch)
	for y := 0; y < ch; y++ {
		copy(out.Pix[y*cw:(y+1)*cw], im.Pix[(y0+y)*im.W+x0:(y0+y)*im.W+x0+cw])
	}
	return out
}

// Downsample keeps every k-th pixel in both dimensions.
func (im *Image) Downsample(k int) *Image {
	if k < 1 {
		k = 1
	}
	ow := (im.W + k - 1) / k
	oh := (im.H + k - 1) / k
	out := NewImage(ow, oh)
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			out.Set(x, y, im.At(x*k, y*k))
		}
	}
	return out
}

// baseQuant is the luminance quantisation matrix from the JPEG standard.
var baseQuant = [64]int{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// zigzag maps coefficient order to block position.
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// quantTable scales the base matrix by quality (1..100, JPEG convention).
func quantTable(quality int) [64]int {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	var scale int
	if quality < 50 {
		scale = 5000 / quality
	} else {
		scale = 200 - quality*2
	}
	var q [64]int
	for i, b := range baseQuant {
		v := (b*scale + 50) / 100
		if v < 1 {
			v = 1
		}
		if v > 255 {
			v = 255
		}
		q[i] = v
	}
	return q
}

// dct8 computes a 1-D 8-point DCT-II in place.
func dct8(v *[8]float64) {
	var out [8]float64
	for k := 0; k < 8; k++ {
		var sum float64
		for n := 0; n < 8; n++ {
			sum += v[n] * cosTable[n][k]
		}
		c := 0.5
		if k == 0 {
			c = 1 / (2 * math.Sqrt2)
		}
		out[k] = sum * c
	}
	*v = out
}

// idct8 computes the inverse 1-D 8-point DCT in place.
func idct8(v *[8]float64) {
	var out [8]float64
	for n := 0; n < 8; n++ {
		var sum float64
		for k := 0; k < 8; k++ {
			c := 1.0
			if k == 0 {
				c = 1 / math.Sqrt2
			}
			sum += c * v[k] * cosTable[n][k]
		}
		out[n] = sum / 2
	}
	*v = out
}

var cosTable = func() [8][8]float64 {
	var t [8][8]float64
	for n := 0; n < 8; n++ {
		for k := 0; k < 8; k++ {
			t[n][k] = math.Cos((2*float64(n) + 1) * float64(k) * math.Pi / 16)
		}
	}
	return t
}()

const magic = "JPLT"

// Encode compresses im at the given quality (1–100).
func Encode(im *Image, quality int) []byte {
	q := quantTable(quality)
	bw := (im.W + 7) / 8
	bh := (im.H + 7) / 8

	out := make([]byte, 0, im.W*im.H/4+16)
	out = append(out, magic...)
	var hdr [10]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(im.W))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(im.H))
	binary.LittleEndian.PutUint16(hdr[8:], uint16(quality))
	out = append(out, hdr[:]...)

	var block [8][8]float64
	coeffs := make([]int32, 0, 64)
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			// Load block with edge replication, level-shifted by -128.
			for y := 0; y < 8; y++ {
				sy := by*8 + y
				if sy >= im.H {
					sy = im.H - 1
				}
				for x := 0; x < 8; x++ {
					sx := bx*8 + x
					if sx >= im.W {
						sx = im.W - 1
					}
					block[y][x] = float64(im.At(sx, sy)) - 128
				}
			}
			// 2-D DCT: rows then columns.
			for y := 0; y < 8; y++ {
				dct8(&block[y])
			}
			for x := 0; x < 8; x++ {
				var col [8]float64
				for y := 0; y < 8; y++ {
					col[y] = block[y][x]
				}
				dct8(&col)
				for y := 0; y < 8; y++ {
					block[y][x] = col[y]
				}
			}
			// Quantise in zigzag order.
			coeffs = coeffs[:0]
			for i := 0; i < 64; i++ {
				pos := zigzag[i]
				c := block[pos/8][pos%8] / float64(q[pos])
				coeffs = append(coeffs, int32(math.Round(c)))
			}
			out = appendRLE(out, coeffs)
		}
	}
	return out
}

// appendRLE writes 64 coefficients as (zero-run, value) pairs with a
// 0xFF end-of-block marker; values are zigzag varints.
func appendRLE(out []byte, coeffs []int32) []byte {
	run := 0
	for _, c := range coeffs {
		if c == 0 {
			run++
			continue
		}
		for run > 62 {
			out = append(out, 62)
			out = appendVarint(out, 0)
			run -= 63
		}
		out = append(out, byte(run))
		out = appendVarint(out, c)
		run = 0
	}
	return append(out, 0xFF)
}

func appendVarint(out []byte, v int32) []byte {
	u := uint32(v<<1) ^ uint32(v>>31) // zigzag-encode the sign
	for u >= 0x80 {
		out = append(out, byte(u)|0x80)
		u >>= 7
	}
	return append(out, byte(u))
}

// Decode decompresses data produced by Encode.
func Decode(data []byte) (*Image, error) {
	if len(data) < len(magic)+10 || string(data[:4]) != magic {
		return nil, fmt.Errorf("jpeglite: bad magic")
	}
	w := int(binary.LittleEndian.Uint32(data[4:]))
	h := int(binary.LittleEndian.Uint32(data[8:]))
	quality := int(binary.LittleEndian.Uint16(data[12:]))
	if w <= 0 || h <= 0 || w > 1<<16 || h > 1<<16 {
		return nil, fmt.Errorf("jpeglite: implausible dimensions %dx%d", w, h)
	}
	q := quantTable(quality)
	im := NewImage(w, h)
	bw := (w + 7) / 8
	bh := (h + 7) / 8
	pos := 14

	coeffs := make([]int32, 64)
	var block [8][8]float64
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			for i := range coeffs {
				coeffs[i] = 0
			}
			idx := 0
			for {
				if pos >= len(data) {
					return nil, fmt.Errorf("jpeglite: truncated block stream")
				}
				marker := data[pos]
				pos++
				if marker == 0xFF {
					break
				}
				idx += int(marker)
				v, n, err := readVarint(data[pos:])
				if err != nil {
					return nil, err
				}
				pos += n
				if idx >= 64 {
					return nil, fmt.Errorf("jpeglite: coefficient index %d out of block", idx)
				}
				coeffs[idx] = v
				idx++
			}
			// Dequantise out of zigzag order.
			for y := range block {
				for x := range block[y] {
					block[y][x] = 0
				}
			}
			for i := 0; i < 64; i++ {
				if coeffs[i] == 0 {
					continue
				}
				p := zigzag[i]
				block[p/8][p%8] = float64(coeffs[i]) * float64(q[p])
			}
			// Inverse 2-D DCT: columns then rows.
			for x := 0; x < 8; x++ {
				var col [8]float64
				for y := 0; y < 8; y++ {
					col[y] = block[y][x]
				}
				idct8(&col)
				for y := 0; y < 8; y++ {
					block[y][x] = col[y]
				}
			}
			for y := 0; y < 8; y++ {
				idct8(&block[y])
			}
			for y := 0; y < 8; y++ {
				sy := by*8 + y
				if sy >= h {
					continue
				}
				for x := 0; x < 8; x++ {
					sx := bx*8 + x
					if sx >= w {
						continue
					}
					v := math.Round(block[y][x] + 128)
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					im.Set(sx, sy, byte(v))
				}
			}
		}
	}
	return im, nil
}

func readVarint(b []byte) (int32, int, error) {
	var u uint32
	var shift uint
	for i := 0; i < len(b) && i < 5; i++ {
		u |= uint32(b[i]&0x7F) << shift
		if b[i] < 0x80 {
			v := int32(u>>1) ^ -int32(u&1) // undo zigzag
			return v, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, fmt.Errorf("jpeglite: truncated varint")
}

// PSNR computes peak signal-to-noise ratio between two same-size images,
// in dB; +Inf for identical images.
func PSNR(a, b *Image) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("jpeglite: size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	var mse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}
