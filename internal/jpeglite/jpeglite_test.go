package jpeglite

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(64, 48, 7)
	b := Synthetic(64, 48, 7)
	c := Synthetic(64, 48, 8)
	if string(a.Pix) != string(b.Pix) {
		t.Fatal("same seed produced different images")
	}
	if string(a.Pix) == string(c.Pix) {
		t.Fatal("different seeds produced identical images")
	}
	if a.W != 64 || a.H != 48 || len(a.Pix) != 64*48 {
		t.Fatalf("dims %dx%d len %d", a.W, a.H, len(a.Pix))
	}
}

func TestEncodeDecodeQuality(t *testing.T) {
	im := Synthetic(128, 96, 3)
	for _, quality := range []int{20, 50, 85} {
		data := Encode(im, quality)
		if len(data) == 0 {
			t.Fatalf("q=%d: empty encoding", quality)
		}
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("q=%d: %v", quality, err)
		}
		if back.W != im.W || back.H != im.H {
			t.Fatalf("q=%d: dims %dx%d", quality, back.W, back.H)
		}
		psnr, err := PSNR(im, back)
		if err != nil {
			t.Fatal(err)
		}
		if psnr < 24 {
			t.Errorf("q=%d: PSNR %.1f dB too low for a working codec", quality, psnr)
		}
	}
}

func TestHigherQualityHigherFidelityAndSize(t *testing.T) {
	im := Synthetic(128, 128, 11)
	lo := Encode(im, 10)
	hi := Encode(im, 90)
	if len(hi) <= len(lo) {
		t.Errorf("q90 (%d bytes) not larger than q10 (%d bytes)", len(hi), len(lo))
	}
	dlo, err := Decode(lo)
	if err != nil {
		t.Fatal(err)
	}
	dhi, err := Decode(hi)
	if err != nil {
		t.Fatal(err)
	}
	plo, _ := PSNR(im, dlo)
	phi, _ := PSNR(im, dhi)
	if phi <= plo {
		t.Errorf("PSNR q90 %.1f <= q10 %.1f", phi, plo)
	}
}

func TestCompressionActuallyCompresses(t *testing.T) {
	im := Synthetic(256, 256, 5)
	data := Encode(im, 50)
	if len(data) >= len(im.Pix) {
		t.Errorf("encoded %d bytes >= raw %d bytes", len(data), len(im.Pix))
	}
}

func TestNonMultipleOf8Dimensions(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {7, 13}, {65, 9}, {100, 101}} {
		im := Synthetic(dims[0], dims[1], 2)
		back, err := Decode(Encode(im, 70))
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		if back.W != dims[0] || back.H != dims[1] {
			t.Fatalf("%v: got %dx%d", dims, back.W, back.H)
		}
	}
}

func TestFlatImageRoundtripsExactly(t *testing.T) {
	im := NewImage(32, 32)
	for i := range im.Pix {
		im.Pix[i] = 128
	}
	back, err := Decode(Encode(im, 50))
	if err != nil {
		t.Fatal(err)
	}
	psnr, _ := PSNR(im, back)
	if !math.IsInf(psnr, 1) && psnr < 45 {
		t.Errorf("flat image PSNR %.1f", psnr)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("JP"),
		[]byte("NOPE12345678901234"),
		append([]byte("JPLT"), make([]byte, 10)...), // 0x0 dims
	}
	for _, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("Decode(%q...) succeeded", c)
		}
	}
	// Truncations of a valid stream must error, not panic.
	full := Encode(Synthetic(24, 24, 1), 50)
	for cut := 14; cut < len(full)-1; cut += 11 {
		if _, err := Decode(full[:cut]); err == nil {
			t.Errorf("truncated decode at %d succeeded", cut)
		}
	}
}

func TestCropCenter(t *testing.T) {
	im := Synthetic(100, 100, 4)
	c := im.CropCenter(0.32)
	wantSide := int(100 * math.Sqrt(0.32))
	if c.W != wantSide || c.H != wantSide {
		t.Fatalf("crop dims %dx%d, want %dx%d", c.W, c.H, wantSide, wantSide)
	}
	// Center pixel preserved.
	if c.At(c.W/2, c.H/2) != im.At(50-(c.W/2-c.W/2), 50) && false {
		t.Fatal("unreachable")
	}
	off := (100 - wantSide) / 2
	if c.At(0, 0) != im.At(off, off) {
		t.Fatal("crop not centred")
	}
	// Degenerate fractions clamp to the full image.
	if full := im.CropCenter(0); full.W != 100 || full.H != 100 {
		t.Fatal("fraction 0 did not clamp")
	}
}

func TestDownsample(t *testing.T) {
	im := Synthetic(90, 60, 9)
	d := im.Downsample(3)
	if d.W != 30 || d.H != 20 {
		t.Fatalf("downsample dims %dx%d", d.W, d.H)
	}
	if d.At(1, 1) != im.At(3, 3) {
		t.Fatal("downsample picked wrong pixels")
	}
	if k1 := im.Downsample(1); k1.W != im.W || k1.At(5, 5) != im.At(5, 5) {
		t.Fatal("k=1 should be identity")
	}
	if k0 := im.Downsample(0); k0.W != im.W {
		t.Fatal("k=0 should clamp to identity")
	}
}

func TestPSNRSizeMismatch(t *testing.T) {
	if _, err := PSNR(NewImage(2, 2), NewImage(3, 3)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

// Property: DCT/IDCT roundtrip reproduces arbitrary 8-vectors.
func TestDCTRoundtripProperty(t *testing.T) {
	f := func(raw [8]int8) bool {
		var v [8]float64
		for i, x := range raw {
			v[i] = float64(x)
		}
		orig := v
		dct8(&v)
		idct8(&v)
		for i := range v {
			if math.Abs(v[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: varint zigzag roundtrips all int32 values.
func TestVarintProperty(t *testing.T) {
	f := func(v int32) bool {
		b := appendVarint(nil, v)
		got, n, err := readVarint(b)
		return err == nil && n == len(b) && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: random small images decode to the original dimensions at
// reasonable fidelity.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed int64, wRaw, hRaw uint8) bool {
		w := int(wRaw%64) + 8
		h := int(hRaw%64) + 8
		im := Synthetic(w, h, seed)
		back, err := Decode(Encode(im, 75))
		if err != nil {
			return false
		}
		psnr, err := PSNR(im, back)
		return err == nil && (psnr > 20 || math.IsInf(psnr, 1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
