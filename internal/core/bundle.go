package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/fmtspec"
	"repro/internal/mpe"
)

// BundleUsage declares what collective operation a bundle serves, fixed at
// creation as in PI_CreateBundle(PI_BROADCAST, ...).
type BundleUsage uint8

// Bundle usages.
const (
	UsageBroadcast BundleUsage = iota
	UsageScatter
	UsageGather
	UsageReduce
	UsageSelect
)

// String implements fmt.Stringer.
func (u BundleUsage) String() string {
	switch u {
	case UsageBroadcast:
		return "PI_BROADCAST"
	case UsageScatter:
		return "PI_SCATTER"
	case UsageGather:
		return "PI_GATHER"
	case UsageReduce:
		return "PI_REDUCE"
	case UsageSelect:
		return "PI_SELECT"
	}
	return fmt.Sprintf("BundleUsage(%d)", uint8(u))
}

// opName returns the Pilot function name performed on this bundle.
func (u BundleUsage) opName() string {
	switch u {
	case UsageBroadcast:
		return "PI_Broadcast"
	case UsageScatter:
		return "PI_Scatter"
	case UsageGather:
		return "PI_Gather"
	case UsageReduce:
		return "PI_Reduce"
	case UsageSelect:
		return "PI_Select"
	}
	return "PI_?"
}

// Bundle is a set of channels sharing a common endpoint, created during
// configuration to serve as the argument of a collective operation
// (PI_BUNDLE*). "A bundle with N channels will result in N arrows being
// drawn."
type Bundle struct {
	r        *Runtime
	id       int
	usage    BundleUsage
	chans    []*Channel
	endpoint *Process

	nameMu sync.Mutex
	name   string
}

// ID returns the bundle identifier.
func (b *Bundle) ID() int { return b.id }

// Usage returns the declared collective usage.
func (b *Bundle) Usage() BundleUsage { return b.usage }

// Size returns the number of channels in the bundle.
func (b *Bundle) Size() int { return len(b.chans) }

// Channel returns the i-th member channel.
func (b *Bundle) Channel(i int) *Channel { return b.chans[i] }

// Endpoint returns the common-end process that performs the collective.
func (b *Bundle) Endpoint() *Process { return b.endpoint }

// Name returns the display name (default "B<id>").
func (b *Bundle) Name() string {
	b.nameMu.Lock()
	defer b.nameMu.Unlock()
	return b.name
}

// SetName assigns a meaningful display name.
func (b *Bundle) SetName(name string) {
	b.nameMu.Lock()
	b.name = name
	b.nameMu.Unlock()
}

// CreateBundle is PI_CreateBundle: it claims the given channels for one
// collective usage. All channels must share a common endpoint on the
// correct side (the writer side for broadcast/scatter, the reader side for
// gather/reduce/select), belong to this runtime, and not already be in a
// bundle. Pilot does not support all-to-all communication.
func (r *Runtime) CreateBundle(usage BundleUsage, chans ...*Channel) (*Bundle, error) {
	loc := callerLoc(1)
	if err := r.requirePhase("PI_CreateBundle", loc, phaseConfig); err != nil {
		return nil, err
	}
	if len(chans) == 0 {
		return nil, errorf("PI_CreateBundle", loc, "bundle needs at least one channel")
	}
	outbound := usage == UsageBroadcast || usage == UsageScatter
	var endpoint *Process
	seenOther := map[int]bool{}
	for i, c := range chans {
		if c == nil {
			return nil, errorf("PI_CreateBundle", loc, "channel %d is nil", i)
		}
		if c.r != r {
			return nil, errorf("PI_CreateBundle", loc, "channel %s belongs to a different runtime", c.Name())
		}
		end, other := c.to, c.from
		if outbound {
			end, other = c.from, c.to
		}
		if endpoint == nil {
			endpoint = end
		} else if endpoint != end {
			return nil, errorf("PI_CreateBundle", loc,
				"%s bundle needs a common %s endpoint: %s has %s, expected %s",
				usage, side(outbound), c.Name(), end.Name(), endpoint.Name())
		}
		if seenOther[other.rank] {
			return nil, errorf("PI_CreateBundle", loc, "process %s appears on two channels", other.Name())
		}
		seenOther[other.rank] = true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range chans {
		if c.bundle != nil {
			return nil, errorf("PI_CreateBundle", loc, "channel %s already belongs to bundle %s", c.Name(), c.bundle.Name())
		}
	}
	b := &Bundle{r: r, id: len(r.bundles) + 1, usage: usage,
		chans: append([]*Channel(nil), chans...), endpoint: endpoint}
	b.name = fmt.Sprintf("B%d", b.id)
	for _, c := range chans {
		c.bundle = b
	}
	r.bundles = append(r.bundles, b)
	return b, nil
}

func side(outbound bool) string {
	if outbound {
		return "writer"
	}
	return "reader"
}

func (b *Bundle) requireUsage(op, loc string, usages ...BundleUsage) error {
	for _, u := range usages {
		if b.usage == u {
			return nil
		}
	}
	return errorf(op, loc, "bundle %s was created for %s", b.Name(), b.usage)
}

// startCollective opens the collective's state rectangle on the endpoint
// timeline with the bundle name in the popup ("the name of the bundle
// (e.g., B4) will be shown").
func (b *Bundle) startCollective(op, loc string) func() {
	r := b.r
	log := r.logger(b.endpoint.rank)
	if log.Enabled() {
		var cb mpe.Cargo
		log.StateStartBytes(r.states[op], cb.KV("line", loc).
			KV("proc", b.endpoint.Name()).KV("bund", b.Name()).Bytes())
	}
	if r.nativeOn() {
		r.nativeLog(b.endpoint.rank, fmt.Sprintf("%s %s bundle %s %s",
			b.endpoint.Name(), op, b.Name(), loc))
	}
	return func() {
		if log.Enabled() {
			log.StateEnd(r.states[op], "")
		}
	}
}

// Broadcast is PI_Broadcast: the endpoint sends the same values down every
// channel of the bundle; each receiver obtains them with an ordinary
// PI_Read on its own channel — Pilot's pure MPMD answer to MPI_Bcast's
// "receivers call broadcast too" confusion.
func (b *Bundle) Broadcast(format string, args ...any) error {
	op, loc := "PI_Broadcast", callerLoc(1)
	r := b.r
	if err := r.requirePhase(op, loc, phaseRunning); err != nil {
		return err
	}
	if err := b.requireUsage(op, loc, UsageBroadcast); err != nil {
		return err
	}
	specs, err := r.parseFormat(op, loc, format)
	if err != nil {
		return err
	}
	// Encode once; fan out N copies.
	type enc struct {
		spec    fmtspec.Spec
		payload []byte
	}
	var encs []enc
	i := 0
	for _, spec := range specs {
		payload, consumed, err := fmtspec.Encode(spec, args[i:])
		if err != nil {
			return errorf(op, loc, "%v", err)
		}
		i += consumed
		encs = append(encs, enc{spec, payload})
	}
	if i != len(args) {
		return errorf(op, loc, "format %q consumed %d arguments, %d supplied", format, i, len(args))
	}
	end := b.startCollective(op, loc)
	defer end()
	for _, c := range b.chans {
		// "a compromise is to artificially spread the time of each arrow
		// creation by inserting delays" — before every arrow, so arrows
		// from back-to-back collectives cannot collide either.
		r.arrowSpread()
		for _, e := range encs {
			if err := c.sendOne(op, loc, e.spec, e.payload, r.logger(b.endpoint.rank).Enabled()); err != nil {
				return err
			}
		}
	}
	return nil
}

// Scatter is PI_Scatter: the endpoint splits an array evenly across the
// bundle's channels; receiver i reads its portion with an ordinary Read.
// The format must be a single array conversion (%Nk or %*k) whose element
// count divides evenly by the bundle size.
func (b *Bundle) Scatter(format string, args ...any) error {
	op, loc := "PI_Scatter", callerLoc(1)
	r := b.r
	if err := r.requirePhase(op, loc, phaseRunning); err != nil {
		return err
	}
	if err := b.requireUsage(op, loc, UsageScatter); err != nil {
		return err
	}
	spec, err := singleArraySpec(r, op, loc, format)
	if err != nil {
		return err
	}
	payload, consumed, err := fmtspec.Encode(spec, args)
	if err != nil {
		return errorf(op, loc, "%v", err)
	}
	if consumed != len(args) {
		return errorf(op, loc, "format %q consumed %d arguments, %d supplied", format, consumed, len(args))
	}
	es := spec.Kind.ElemSize()
	total := len(payload) / es
	n := len(b.chans)
	if total%n != 0 {
		return errorf(op, loc, "cannot scatter %d elements evenly over %d channels", total, n)
	}
	per := total / n
	wire := fmtspec.Spec{Kind: spec.Kind, Mode: fmtspec.Star}
	end := b.startCollective(op, loc)
	defer end()
	for ci, c := range b.chans {
		r.arrowSpread()
		part := payload[ci*per*es : (ci+1)*per*es]
		if err := c.sendOne(op, loc, wire, part, r.logger(b.endpoint.rank).Enabled()); err != nil {
			return err
		}
	}
	return nil
}

// Gather is PI_Gather: the endpoint collects one array portion from every
// channel, in channel order, into a single destination array. Writers send
// their portions with ordinary Writes. The format must be a single array
// conversion sized for the whole result.
func (b *Bundle) Gather(format string, args ...any) error {
	op, loc := "PI_Gather", callerLoc(1)
	r := b.r
	if err := r.requirePhase(op, loc, phaseRunning); err != nil {
		return err
	}
	if err := b.requireUsage(op, loc, UsageGather); err != nil {
		return err
	}
	spec, err := singleArraySpec(r, op, loc, format)
	if err != nil {
		return err
	}
	end := b.startCollective(op, loc)
	defer end()
	log := r.logger(b.endpoint.rank)
	var concat []byte
	for ci, c := range b.chans {
		// Spread applies to each arrow creation — receive side included:
		// draining already-queued contributions would otherwise stamp
		// several arrival bubbles into one clock tick.
		r.arrowSpread()
		m, err := c.recvOne(op, loc)
		if err != nil {
			return err
		}
		wireFmt, payload, err := parseFrame(m.Data)
		if err != nil {
			return errorf(op, loc, "on %s: %v", c.Name(), err)
		}
		if log.Enabled() {
			log.LogRecv(c.from.rank, c.id, len(m.Data))
			var cb mpe.Cargo
			log.EventBytes(r.events["MsgArrival"], cb.KV("chan", c.Name()).
				Str(" part: ").Int(ci+1).Str("/").Int(len(b.chans)).Bytes())
		}
		if r.cfg.CheckLevel >= 2 {
			if err := checkWireFormat(wireFmt, fmtspec.Spec{Kind: spec.Kind, Mode: fmtspec.Star}); err != nil {
				return errorf(op, loc, "on %s: %v", c.Name(), err)
			}
		}
		concat = append(concat, payload...)
	}
	if _, err := fmtspec.Decode(spec, concat, args); err != nil {
		return errorf(op, loc, "%v", err)
	}
	return nil
}

// singleArraySpec parses format and requires exactly one Fixed or Star
// array conversion, as scatter/gather need portionable data.
func singleArraySpec(r *Runtime, op, loc, format string) (fmtspec.Spec, error) {
	specs, err := r.parseFormat(op, loc, format)
	if err != nil {
		return fmtspec.Spec{}, err
	}
	if len(specs) != 1 {
		return fmtspec.Spec{}, errorf(op, loc, "%s needs exactly one conversion, format %q has %d", op, format, len(specs))
	}
	s := specs[0]
	if s.Mode != fmtspec.Fixed && s.Mode != fmtspec.Star {
		return fmtspec.Spec{}, errorf(op, loc, "%s needs a %%N or %%* array conversion, got %s", op, s)
	}
	return s, nil
}

// Select is PI_Select: block until any channel of the bundle has data and
// return its index. "It acts like PI_Read in that it blocks ... therefore
// it should be represented as state. On the other hand, no message is
// actually received ... therefore it does not have an event bubble. Its
// information popup gives the index of the channel that is ready."
func (b *Bundle) Select() (int, error) {
	op, loc := "PI_Select", callerLoc(1)
	r := b.r
	if err := r.requirePhase(op, loc, phaseRunning); err != nil {
		return -1, err
	}
	if err := b.requireUsage(op, loc, UsageSelect); err != nil {
		return -1, err
	}
	log := r.logger(b.endpoint.rank)
	if log.Enabled() {
		var cb mpe.Cargo
		log.StateStartBytes(r.states[op], cb.KV("line", loc).
			KV("proc", b.endpoint.Name()).KV("bund", b.Name()).Bytes())
	}
	if r.nativeOn() {
		r.nativeLog(b.endpoint.rank, fmt.Sprintf("%s PI_Select bundle %s %s",
			b.endpoint.Name(), b.Name(), loc))
	}

	mx := r.metrics
	var t0 time.Time
	if mx != nil {
		t0 = time.Now()
	}
	idx, err := b.pollReady(op, loc, true)
	if mx != nil && err == nil {
		mx.SelectObserved(b.endpoint.rank, len(b.chans), time.Since(t0).Nanoseconds())
	}
	if log.Enabled() {
		var cb mpe.Cargo
		log.StateEndBytes(r.states[op], cb.Str("ready: ").Int(idx).Bytes())
	}
	return idx, err
}

// TrySelect is PI_TrySelect: a single non-blocking sweep, returning the
// ready channel index or -1. Shown as a bubble with the result.
func (b *Bundle) TrySelect() (int, error) {
	op, loc := "PI_TrySelect", callerLoc(1)
	r := b.r
	if err := r.requirePhase(op, loc, phaseRunning); err != nil {
		return -1, err
	}
	if err := b.requireUsage(op, loc, UsageSelect); err != nil {
		return -1, err
	}
	idx, err := b.sweep()
	if err != nil {
		return -1, errorf(op, loc, "%v", err)
	}
	if log := r.logger(b.endpoint.rank); log.Enabled() {
		var cb mpe.Cargo
		log.EventBytes(r.events["PI_TrySelect"], cb.KV("bund", b.Name()).
			Str(" ready: ").Int(idx).KV("line", loc).Bytes())
	}
	if r.nativeOn() {
		r.nativeLog(b.endpoint.rank, fmt.Sprintf("%s PI_TrySelect bundle %s -> %d %s",
			b.endpoint.Name(), b.Name(), idx, loc))
	}
	return idx, nil
}

// sweep checks each channel once, returning the first ready index or -1.
func (b *Bundle) sweep() (int, error) {
	rank := b.r.world.Rank(b.endpoint.rank)
	for i, c := range b.chans {
		_, ok, err := rank.Iprobe(c.from.rank, c.id)
		if err != nil {
			return -1, err
		}
		if ok {
			return i, nil
		}
	}
	return -1, nil
}

// pollReady loops sweep until a channel is ready, announcing an any-of
// wait to the deadlock detector after the first empty pass.
func (b *Bundle) pollReady(op, loc string, block bool) (int, error) {
	idx, err := b.sweep()
	if err != nil || idx >= 0 || !block {
		if err != nil {
			return -1, errorf(op, loc, "%v", err)
		}
		return idx, nil
	}
	if b.r.detectorOn() {
		peers := make([]int, len(b.chans))
		for i, c := range b.chans {
			peers[i] = c.from.rank
		}
		b.r.svcWait(b.endpoint.rank, op, peers, true, loc)
		defer b.r.svcDone(b.endpoint.rank)
	}
	for {
		idx, err := b.sweep()
		if err != nil {
			return -1, errorf(op, loc, "%v", err)
		}
		if idx >= 0 {
			return idx, nil
		}
		time.Sleep(20 * time.Microsecond)
	}
}
