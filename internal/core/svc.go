package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"time"

	"repro/internal/deadlock"
	"repro/internal/mpi"
	"repro/internal/nativelog"
)

// Service-process message kinds (first byte of every CtxSvc payload).
// Pilot runs native logging and the deadlock detector in one dedicated
// process fed by a pipeline of API events; these messages are that
// pipeline.
const (
	svcMsgLog    = 'L' // native log line follows
	svcMsgWait   = 'W' // process announces a blocking operation
	svcMsgDone   = 'D' // process's blocking operation completed
	svcMsgExited = 'X' // process's work function returned
	svcMsgQuit   = 'Q' // main asks the service process to shut down
)

const svcTag = 0

// svcSend ships one service message from rank `from` to the service rank.
// A no-op without a service process; errors are only possible after abort.
func (r *Runtime) svcSend(kind byte, from int, body []byte) error {
	if r.svcRank < 0 {
		return nil
	}
	msg := make([]byte, 0, 1+len(body))
	msg = append(msg, kind)
	msg = append(msg, body...)
	return r.world.Rank(from).SendCtx(mpi.CtxSvc, r.svcRank, svcTag, msg)
}

// nativeLog sends one native-log line on behalf of rank. The service
// process stamps it with the *arrival* time — reproducing shortcoming (1)
// of Pilot's original log: "the timestamps were not accurate, since they
// recorded the moment of arrival of API events at a central logging
// process".
func (r *Runtime) nativeLog(rank int, text string) {
	if !r.nativeOn() {
		return
	}
	_ = r.svcSend(svcMsgLog, rank, []byte(text))
}

// nativeOn reports whether native-log lines are being collected. Call
// sites check it before formatting their line so a disabled native log
// costs no fmt work at all.
func (r *Runtime) nativeOn() bool {
	return r.svcRank >= 0 && r.cfg.HasService(SvcNativeLog)
}

func (r *Runtime) detectorOn() bool {
	return r.svcRank >= 0 && r.cfg.HasService(SvcDeadlock)
}

// svcWait announces that rank is about to block in op on the given peers.
func (r *Runtime) svcWait(rank int, op string, peers []int, anyOf bool, loc string) {
	if !r.detectorOn() {
		return
	}
	body := make([]byte, 0, 16+len(op)+len(loc)+4*len(peers))
	body = append(body, byte(boolToInt(anyOf)))
	body = appendStr(body, op)
	body = appendStr(body, loc)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(peers)))
	body = append(body, n[:]...)
	for _, p := range peers {
		binary.LittleEndian.PutUint32(n[:], uint32(p))
		body = append(body, n[:]...)
	}
	_ = r.svcSend(svcMsgWait, rank, body)
}

func (r *Runtime) svcDone(rank int) {
	if !r.detectorOn() {
		return
	}
	_ = r.svcSend(svcMsgDone, rank, nil)
}

func (r *Runtime) svcExited(rank int) {
	if r.svcRank < 0 {
		return
	}
	_ = r.svcSend(svcMsgExited, rank, nil)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func appendStr(b []byte, s string) []byte {
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], uint16(len(s)))
	b = append(b, n[:]...)
	return append(b, s...)
}

func readStr(b []byte) (string, []byte) {
	if len(b) < 2 {
		return "", nil
	}
	n := binary.LittleEndian.Uint16(b)
	b = b[2:]
	if len(b) < int(n) {
		return "", nil
	}
	return string(b[:n]), b[n:]
}

// svcServer is the state of the dedicated service process: Pilot's
// combined native-log writer and deadlock detector, occupying the last
// rank.
type svcServer struct {
	r     *Runtime
	rank  *mpi.Rank
	graph *deadlock.Graph
	logw  *bufio.Writer
	logf  *os.File
	// lineBuf is reused across writeLine calls so stamping a line
	// allocates nothing once it has grown to the longest line seen.
	lineBuf []byte
	quit    bool
	// quitWanted defers a quit request until every worker has announced
	// its exit. In-process the request cannot arrive early (StopMain
	// waits for the workers first), but in a multi-process world rank 0's
	// quit races the workers' exit notices through the hub, and quitting
	// early would strand the deadlock detector's last observations.
	quitWanted bool
	exited     int
	workers    int
	// confirming suppresses nested deadlock confirmation while draining
	// in-flight events during the grace period.
	confirming bool
}

// svcMain runs the service process goroutine.
func (r *Runtime) svcMain() {
	defer r.wgAll.Done()
	s := &svcServer{r: r, rank: r.world.Rank(r.svcRank), graph: deadlock.New()}
	r.mu.Lock()
	s.workers = len(r.procs) - 1 // everyone but PI_MAIN reports an exit
	r.mu.Unlock()
	if r.cfg.HasService(SvcNativeLog) {
		f, err := os.Create(r.cfg.NativePath)
		if err != nil {
			r.warnf("pilot: cannot open native log %s: %v", r.cfg.NativePath, err)
		} else {
			s.logf = f
			s.logw = bufio.NewWriter(f)
		}
	}

	for !s.quit {
		m, err := s.rank.RecvCtx(mpi.CtxSvc, mpi.AnySource, svcTag)
		if err != nil {
			break // world aborted
		}
		s.handle(m)
	}
	if s.logw != nil {
		s.logw.Flush()
	}
	if s.logf != nil {
		s.logf.Close()
	}
	if r.jlog && !r.world.Aborted() {
		_ = r.logger(r.svcRank).Finish(nil)
	}
}

func (s *svcServer) writeLine(text string) {
	if s.logw == nil {
		return
	}
	// Arrival timestamp, as in Pilot's original facility. Flushed per
	// entry so the native log survives an abort.
	s.lineBuf = nativelog.AppendLine(s.lineBuf[:0], s.rank.Wtime(), text)
	s.logw.Write(s.lineBuf)
	s.logw.Flush()
}

func (s *svcServer) handle(m mpi.Message) {
	if len(m.Data) == 0 {
		return
	}
	kind, body := m.Data[0], m.Data[1:]
	switch kind {
	case svcMsgQuit:
		s.quitWanted = true
		s.maybeQuit()
	case svcMsgLog:
		s.writeLine(string(body))
	case svcMsgExited:
		s.exited++
		s.graph.SetExited(m.Source)
		s.writeLine(fmt.Sprintf("P%d exited", m.Source))
		s.maybeReport()
		s.maybeQuit()
	case svcMsgDone:
		s.graph.ClearWait(m.Source)
	case svcMsgWait:
		if len(body) < 1 {
			return
		}
		anyOf := body[0] == 1
		op, rest := readStr(body[1:])
		loc, rest := readStr(rest)
		if len(rest) < 4 {
			return
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		peers := make([]int, 0, n)
		for i := 0; i < n && len(rest) >= 4; i++ {
			peers = append(peers, int(binary.LittleEndian.Uint32(rest)))
			rest = rest[4:]
		}
		s.graph.SetWait(m.Source, deadlock.Wait{Op: op, Peers: peers, AnyOf: anyOf, Loc: loc})
		s.maybeReport()
	}
}

// maybeQuit honours a pending quit request once all workers have exited.
func (s *svcServer) maybeQuit() {
	if s.quitWanted && s.exited >= s.workers {
		s.quit = true
	}
}

// maybeReport runs the deadlock check and, when a suspicion survives the
// confirmation grace period, publishes the report and aborts the world.
func (s *svcServer) maybeReport() {
	if s.confirming || s.graph.Check() == nil {
		return
	}
	if rep := s.confirmDeadlock(); rep != nil {
		s.r.setDeadlockReport(rep)
		s.r.warnf("pilot: %s", rep.String())
		s.writeLine("DEADLOCK " + rep.String())
		if s.r.jlog {
			// Drop the report bubble before aborting: with RobustLog the
			// spill files preserve it for the salvaged timeline.
			// Event truncates to clog2.MaxCargo on the write side.
			s.r.logger(s.r.svcRank).Event(s.r.events["Deadlock"], fmt.Sprintf("procs: %v", rep.Procs))
		}
		s.rank.Abort(AbortCodeDeadlock)
		s.quit = true
	}
}

// confirmDeadlock rechecks a suspected deadlock after a grace period. A
// wait event can race a completion already in flight (data landed just
// after the process announced its wait); draining events for
// DeadlockGrace filters those out. True deadlocks persist forever, so the
// grace only delays the report.
func (s *svcServer) confirmDeadlock() *deadlock.Report {
	s.confirming = true
	defer func() { s.confirming = false }()
	deadline := time.Now().Add(s.r.cfg.DeadlockGrace)
	for time.Now().Before(deadline) {
		_, ok, err := s.rank.IprobeCtx(mpi.CtxSvc, mpi.AnySource, svcTag)
		if err != nil {
			return nil
		}
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		m, err := s.rank.RecvCtx(mpi.CtxSvc, mpi.AnySource, svcTag)
		if err != nil {
			return nil
		}
		s.handle(m)
		if s.quit {
			return nil
		}
		if s.graph.Check() == nil {
			return nil
		}
	}
	return s.graph.Check()
}
