package core

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"repro/internal/clog2"
	"repro/internal/slog2"
)

// Randomised whole-stack soak: random master/worker message schedules with
// random formats, run with full logging, then converted and checked. Every
// value must arrive intact, every log must convert cleanly, and the
// SLOG-2 invariants must hold. This is the "reasonably large and complex
// Pilot application" robustness claim turned into a property.
func TestRandomProgramsEndToEnd(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runRandomProgram(t, seed)
		})
	}
}

func runRandomProgram(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	workers := rng.Intn(5) + 1
	rounds := rng.Intn(6) + 1

	cfg, _ := testConfig(t, workers+1, "j")
	r := mustRuntime(t, cfg)

	type job struct {
		kind int // 0: %d scalar, 1: %*lf array, 2: %^c bytes, 3: %s string
		n    int
	}
	schedule := make([][]job, workers)
	for w := range schedule {
		for k := 0; k < rounds; k++ {
			schedule[w] = append(schedule[w], job{kind: rng.Intn(4), n: rng.Intn(40) + 1})
		}
	}

	toW := make([]*Channel, workers)
	fromW := make([]*Channel, workers)
	// Workers echo back a digest of everything received.
	worker := func(self *Self, index int, arg any) int {
		var digest float64
		for _, j := range schedule[index] {
			switch j.kind {
			case 0:
				var v int
				if err := toW[index].Read("%d", &v); err != nil {
					t.Errorf("worker %d: %v", index, err)
					return 1
				}
				digest += float64(v)
			case 1:
				buf := make([]float64, j.n)
				if err := toW[index].Read("%*lf", j.n, buf); err != nil {
					t.Errorf("worker %d: %v", index, err)
					return 1
				}
				for _, v := range buf {
					digest += v
				}
			case 2:
				var b []byte
				if err := toW[index].Read("%^c", &b); err != nil {
					t.Errorf("worker %d: %v", index, err)
					return 1
				}
				for _, v := range b {
					digest += float64(v)
				}
			case 3:
				var s string
				if err := toW[index].Read("%s", &s); err != nil {
					t.Errorf("worker %d: %v", index, err)
					return 1
				}
				digest += float64(len(s))
			}
		}
		if err := fromW[index].Write("%lf", digest); err != nil {
			t.Errorf("worker %d: %v", index, err)
			return 1
		}
		return 0
	}
	for i := 0; i < workers; i++ {
		p, err := r.CreateProcess(worker, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		if toW[i], err = r.CreateChannel(r.MainProc(), p); err != nil {
			t.Fatal(err)
		}
		if fromW[i], err = r.CreateChannel(p, r.MainProc()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}

	// Interleave sends across workers in random order, tracking expected
	// digests.
	expect := make([]float64, workers)
	type pending struct{ w, k int }
	var order []pending
	for w := range schedule {
		for k := range schedule[w] {
			order = append(order, pending{w, k})
		}
	}
	// Shuffle but keep per-worker order (stable partition by random keys).
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	next := make([]int, workers)
	sent := 0
	for sent < len(order) {
		for _, p := range order {
			if next[p.w] != p.k {
				continue
			}
			j := schedule[p.w][p.k]
			switch j.kind {
			case 0:
				v := rng.Intn(1000)
				if err := toW[p.w].Write("%d", v); err != nil {
					t.Fatal(err)
				}
				expect[p.w] += float64(v)
			case 1:
				buf := make([]float64, j.n)
				for i := range buf {
					buf[i] = rng.Float64() * 10
					expect[p.w] += buf[i]
				}
				if err := toW[p.w].Write("%*lf", j.n, buf); err != nil {
					t.Fatal(err)
				}
			case 2:
				b := make([]byte, j.n)
				for i := range b {
					b[i] = byte(rng.Intn(256))
					expect[p.w] += float64(b[i])
				}
				if err := toW[p.w].Write("%^c", b); err != nil {
					t.Fatal(err)
				}
			case 3:
				s := string(make([]byte, j.n))
				if err := toW[p.w].Write("%s", s); err != nil {
					t.Fatal(err)
				}
				expect[p.w] += float64(j.n)
			}
			next[p.w]++
			sent++
		}
	}

	for w := 0; w < workers; w++ {
		var digest float64
		if err := fromW[w].Read("%lf", &digest); err != nil {
			t.Fatal(err)
		}
		diff := digest - expect[w]
		if diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("worker %d digest %v, want %v", w, digest, expect[w])
		}
	}
	if err := r.StopMain(0); err != nil {
		t.Fatal(err)
	}

	// The full pipeline on the random program's log.
	raw, err := os.Open(cfg.JumpshotPath)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	cf, err := clog2.Read(raw)
	if err != nil {
		t.Fatal(err)
	}
	sf, rep, err := slog2.Convert(cf, slog2.ConvertOptions{FrameCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NestingErrors+rep.UnmatchedSends+rep.UnmatchedRecvs != 0 {
		t.Fatalf("seed %d: conversion problems %+v\n%v", seed, rep, rep.Warnings)
	}
	if err := sf.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every wire message produced exactly one arrow.
	wantArrows := 0
	for w := range schedule {
		wantArrows += len(schedule[w]) + 1 // + the digest reply
	}
	if rep.Arrows != wantArrows {
		t.Fatalf("seed %d: %d arrows, want %d", seed, rep.Arrows, wantArrows)
	}
}
