package core

import (
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/clog2"
	"repro/internal/slog2"
)

// buildStar wires W workers to main with one channel in each direction and
// returns (toWorkers, fromWorkers, procs).
func buildStar(t *testing.T, r *Runtime, w int, fn WorkFunc) ([]*Channel, []*Channel, []*Process) {
	t.Helper()
	to := make([]*Channel, w)
	from := make([]*Channel, w)
	procs := make([]*Process, w)
	for i := 0; i < w; i++ {
		p, err := r.CreateProcess(fn, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
		if to[i], err = r.CreateChannel(r.MainProc(), p); err != nil {
			t.Fatal(err)
		}
		if from[i], err = r.CreateChannel(p, r.MainProc()); err != nil {
			t.Fatal(err)
		}
	}
	return to, from, procs
}

func TestBroadcastAndGather(t *testing.T) {
	const W = 4
	cfg, _ := testConfig(t, W+1, "")
	r := mustRuntime(t, cfg)

	var to, from []*Channel
	fn := func(self *Self, index int, arg any) int {
		var factor int
		if err := to[index].Read("%d", &factor); err != nil {
			t.Errorf("worker %d: %v", index, err)
			return 1
		}
		part := make([]int, 3)
		for j := range part {
			part[j] = factor * (index*3 + j)
		}
		if err := from[index].Write("%*d", 3, part); err != nil {
			t.Errorf("worker %d: %v", index, err)
			return 1
		}
		return 0
	}
	to, from, _ = buildStar(t, r, W, fn)
	bcast, err := r.CreateBundle(UsageBroadcast, to...)
	if err != nil {
		t.Fatal(err)
	}
	gather, err := r.CreateBundle(UsageGather, from...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	if err := bcast.Broadcast("%d", 10); err != nil {
		t.Fatal(err)
	}
	result := make([]int, 3*W)
	if err := gather.Gather("%*d", 3*W, result); err != nil {
		t.Fatal(err)
	}
	if err := r.StopMain(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range result {
		if v != 10*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, 10*i)
		}
	}
}

func TestScatterDistributesPortions(t *testing.T) {
	const W = 3
	cfg, _ := testConfig(t, W+1, "")
	r := mustRuntime(t, cfg)
	var to, from []*Channel
	fn := func(self *Self, index int, arg any) int {
		part := make([]float64, 2)
		if err := to[index].Read("%*lf", 2, part); err != nil {
			t.Errorf("worker %d: %v", index, err)
			return 1
		}
		if err := from[index].Write("%lf", part[0]+part[1]); err != nil {
			return 1
		}
		return 0
	}
	to, from, _ = buildStar(t, r, W, fn)
	scatter, err := r.CreateBundle(UsageScatter, to...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	data := []float64{1, 2, 10, 20, 100, 200}
	if err := scatter.Scatter("%*lf", 6, data); err != nil {
		t.Fatal(err)
	}
	sums := make([]float64, W)
	for i := 0; i < W; i++ {
		if err := from[i].Read("%lf", &sums[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.StopMain(0); err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 30, 300}
	for i := range want {
		if sums[i] != want[i] {
			t.Fatalf("sums = %v, want %v", sums, want)
		}
	}
}

func TestScatterUnevenFails(t *testing.T) {
	cfg, _ := testConfig(t, 3, "")
	r := mustRuntime(t, cfg)
	var to []*Channel
	fn := func(self *Self, index int, arg any) int {
		part := make([]int, 10)
		to[index].Read("%*d", 10, part) // never satisfied; scatter fails first
		return 0
	}
	to, _, _ = buildStar(t, r, 2, fn)
	scatter, err := r.CreateBundle(UsageScatter, to...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	if err := scatter.Scatter("%*d", 5, []int{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("uneven scatter succeeded")
	}
	// Unblock workers so StopMain can finish.
	for i := range to {
		to[i].Write("%*d", 10, make([]int, 10))
	}
	r.StopMain(0)
}

func TestReduceOps(t *testing.T) {
	const W = 4
	for _, tc := range []struct {
		op   ReduceOp
		want int
	}{
		{OpSum, 1 + 2 + 3 + 4},
		{OpProd, 24},
		{OpMin, 1},
		{OpMax, 4},
	} {
		cfg, _ := testConfig(t, W+1, "")
		r := mustRuntime(t, cfg)
		var from []*Channel
		fn := func(self *Self, index int, arg any) int {
			if err := from[index].Write("%d", index+1); err != nil {
				return 1
			}
			return 0
		}
		_, from, _ = buildStar(t, r, W, fn)
		reduce, err := r.CreateBundle(UsageReduce, from...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.StartAll(); err != nil {
			t.Fatal(err)
		}
		var got int
		if err := reduce.Reduce(tc.op, "%d", &got); err != nil {
			t.Fatal(err)
		}
		if err := r.StopMain(0); err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("%v = %d, want %d", tc.op, got, tc.want)
		}
	}
}

func TestReduceArrayElementwise(t *testing.T) {
	const W = 3
	cfg, _ := testConfig(t, W+1, "")
	r := mustRuntime(t, cfg)
	var from []*Channel
	fn := func(self *Self, index int, arg any) int {
		vals := []float64{float64(index), float64(index * index), 1}
		if err := from[index].Write("%3lf", vals); err != nil {
			return 1
		}
		return 0
	}
	_, from, _ = buildStar(t, r, W, fn)
	reduce, err := r.CreateBundle(UsageReduce, from...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 3)
	if err := reduce.Reduce(OpSum, "%3lf", got); err != nil {
		t.Fatal(err)
	}
	if err := r.StopMain(0); err != nil {
		t.Fatal(err)
	}
	want := []float64{0 + 1 + 2, 0 + 1 + 4, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reduce = %v, want %v", got, want)
		}
	}
}

func TestReduceRejectsString(t *testing.T) {
	cfg, _ := testConfig(t, 3, "")
	r := mustRuntime(t, cfg)
	var from []*Channel
	fn := func(self *Self, index int, arg any) int { return 0 }
	_, from, _ = buildStar(t, r, 2, fn)
	red, err := r.CreateBundle(UsageReduce, from...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	var s string
	if err := red.Reduce(OpSum, "%s", &s); err == nil {
		t.Fatal("string reduce accepted")
	}
	r.StopMain(0)
}

func TestBundleValidation(t *testing.T) {
	cfg, _ := testConfig(t, 4, "")
	r := mustRuntime(t, cfg)
	fn := func(self *Self, index int, arg any) int { return 0 }
	p1, _ := r.CreateProcess(fn, 0, nil)
	p2, _ := r.CreateProcess(fn, 1, nil)
	c1, _ := r.CreateChannel(r.MainProc(), p1)
	c2, _ := r.CreateChannel(r.MainProc(), p2)
	c3, _ := r.CreateChannel(p1, r.MainProc())
	c4, _ := r.CreateChannel(p1, p2)

	if _, err := r.CreateBundle(UsageBroadcast); err == nil {
		t.Error("empty bundle accepted")
	}
	if _, err := r.CreateBundle(UsageBroadcast, c1, nil); err == nil {
		t.Error("nil channel accepted")
	}
	// Broadcast needs common writer endpoint; c3 is written by p1.
	if _, err := r.CreateBundle(UsageBroadcast, c1, c3); err == nil {
		t.Error("mixed-endpoint broadcast bundle accepted")
	}
	// Gather needs common reader endpoint; c4 is read by p2.
	if _, err := r.CreateBundle(UsageGather, c3, c4); err == nil {
		t.Error("mixed-endpoint gather bundle accepted")
	}
	b, err := r.CreateBundle(UsageBroadcast, c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() != 2 || b.Endpoint() != r.MainProc() || b.Name() != "B1" {
		t.Fatalf("bundle %+v", b)
	}
	// A channel cannot join two bundles.
	if _, err := r.CreateBundle(UsageScatter, c1); err == nil {
		t.Error("channel reused across bundles")
	}
	// Wrong usage at call time.
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	if err := b.Scatter("%*d", 2, []int{1, 2}); err == nil {
		t.Error("scatter on broadcast bundle accepted")
	}
	if _, err := b.Select(); err == nil {
		t.Error("select on broadcast bundle accepted")
	}
	if err := b.Broadcast("%d", 1); err != nil {
		t.Fatal(err)
	}
	r.StopMain(0)
}

func TestSelectAndTrySelect(t *testing.T) {
	const W = 3
	cfg, _ := testConfig(t, W+1, "")
	r := mustRuntime(t, cfg)
	var from []*Channel
	release := make(chan int, W)
	fn := func(self *Self, index int, arg any) int {
		order := <-release
		time.Sleep(time.Duration(order) * 5 * time.Millisecond)
		if err := from[index].Write("%d", index*100); err != nil {
			return 1
		}
		return 0
	}
	_, from, _ = buildStar(t, r, W, fn)
	sel, err := r.CreateBundle(UsageSelect, from...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	// Nothing ready yet.
	if idx, err := sel.TrySelect(); err != nil || idx != -1 {
		t.Fatalf("TrySelect on empty = %d, %v", idx, err)
	}
	// Workers publish in a known order: 1 first, then 0, then 2.
	release <- 1 // index 0 waits 5ms... order by value sent
	release <- 0
	release <- 2
	seen := map[int]bool{}
	for n := 0; n < W; n++ {
		idx, err := sel.Select()
		if err != nil {
			t.Fatal(err)
		}
		if idx < 0 || idx >= W || seen[idx] && false {
			t.Fatalf("select idx %d", idx)
		}
		var v int
		if err := from[idx].Read("%d", &v); err != nil {
			t.Fatal(err)
		}
		if v != idx*100 {
			t.Fatalf("read %d from channel %d", v, idx)
		}
		seen[idx] = true
	}
	if len(seen) != W {
		t.Fatalf("selected %v, want all %d channels", seen, W)
	}
	if err := r.StopMain(0); err != nil {
		t.Fatal(err)
	}
}

// The integrated deadlock detector: a classic read/read cycle between two
// workers is detected, reported with source locations, and the program is
// aborted rather than hanging.
func TestDeadlockDetectedReadCycle(t *testing.T) {
	cfg, errBuf := testConfig(t, 4, "d")
	cfg.DeadlockGrace = 30 * time.Millisecond
	r := mustRuntime(t, cfg)
	var c12, c21 *Channel
	fn1 := func(self *Self, index int, arg any) int {
		var v int
		c21.Read("%d", &v) // waits for P2, who waits for P1
		return 0
	}
	fn2 := func(self *Self, index int, arg any) int {
		var v int
		c12.Read("%d", &v)
		return 0
	}
	p1, _ := r.CreateProcess(fn1, 0, nil)
	p2, _ := r.CreateProcess(fn2, 1, nil)
	var err error
	if c12, err = r.CreateChannel(p1, p2); err != nil {
		t.Fatal(err)
	}
	if c21, err = r.CreateChannel(p2, p1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	err = r.StopMain(0)
	if err == nil {
		t.Fatal("deadlocked program finished cleanly")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("StopMain error: %v", err)
	}
	rep := r.DeadlockReport()
	if rep == nil || len(rep.Procs) != 2 {
		t.Fatalf("report %+v", rep)
	}
	if !strings.Contains(errBuf.String(), "DEADLOCK") {
		t.Errorf("no deadlock diagnostic on stderr: %q", errBuf.String())
	}
	if !strings.Contains(rep.String(), "collective_test.go") {
		t.Errorf("report lacks source location: %s", rep.String())
	}
}

// Reading from a process that already exited is the other classic novice
// deadlock.
func TestDeadlockReadFromExited(t *testing.T) {
	cfg, _ := testConfig(t, 3, "d")
	cfg.DeadlockGrace = 30 * time.Millisecond
	r := mustRuntime(t, cfg)
	fn := func(self *Self, index int, arg any) int {
		return 0 // exits immediately, writing nothing
	}
	p, _ := r.CreateProcess(fn, 0, nil)
	ch, err := r.CreateChannel(p, r.MainProc())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	var v int
	readErr := ch.Read("%d", &v)
	if readErr == nil {
		t.Fatal("read from exited writer succeeded")
	}
	stopErr := r.StopMain(0)
	if stopErr == nil || !strings.Contains(stopErr.Error(), "deadlock") {
		t.Fatalf("StopMain: %v", stopErr)
	}
}

// Buffered data from an exited writer must NOT be flagged: the message is
// already in flight.
func TestNoFalseDeadlockOnBufferedData(t *testing.T) {
	cfg, _ := testConfig(t, 3, "d")
	r := mustRuntime(t, cfg)
	fn := func(self *Self, index int, arg any) int {
		arg.(*Channel).Write("%d", 99) // eager; exits immediately after
		return 0
	}
	p, _ := r.CreateProcess(fn, 0, nil)
	ch, err := r.CreateChannel(p, r.MainProc())
	if err != nil {
		t.Fatal(err)
	}
	p.arg = ch
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // ensure writer has exited
	var v int
	if err := ch.Read("%d", &v); err != nil {
		t.Fatal(err)
	}
	if v != 99 {
		t.Fatalf("v = %d", v)
	}
	if err := r.StopMain(0); err != nil {
		t.Fatal(err)
	}
}

func TestChannelHasData(t *testing.T) {
	cfg, _ := testConfig(t, 2, "")
	r := mustRuntime(t, cfg)
	ready := make(chan struct{})
	fn := func(self *Self, index int, arg any) int {
		<-ready
		arg.(*Channel).Write("%d", 1)
		return 0
	}
	p, _ := r.CreateProcess(fn, 0, nil)
	ch, _ := r.CreateChannel(p, r.MainProc())
	p.arg = ch
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	if has, err := ch.HasData(); err != nil || has {
		t.Fatalf("HasData on empty channel = %v, %v", has, err)
	}
	close(ready)
	deadline := time.Now().Add(2 * time.Second)
	for {
		has, err := ch.HasData()
		if err != nil {
			t.Fatal(err)
		}
		if has {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("HasData never became true")
		}
	}
	var v int
	ch.Read("%d", &v)
	r.StopMain(0)
}

// The arrow-spread ablation at the core level: with a coarse-resolution
// clock and spread disabled, a broadcast fan-out produces Equal Drawables
// warnings; the default 1 ms spread eliminates them (Section III.C).
func TestArrowSpreadEliminatesEqualDrawables(t *testing.T) {
	run := func(spread time.Duration) int {
		const W = 4
		cfg, _ := testConfig(t, W+1, "j")
		cfg.ArrowSpread = spread
		// 1 ms clock resolution, like a coarse MPI_Wtime.
		cfg.Clocks = coarseClocks(W+1, 1e-3)
		r := mustRuntime(t, cfg)
		var to []*Channel
		fn := func(self *Self, index int, arg any) int {
			var v int
			if err := to[index].Read("%d", &v); err != nil {
				return 1
			}
			return 0
		}
		to, _, _ = buildStar(t, r, W, fn)
		b, err := r.CreateBundle(UsageBroadcast, to...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.StartAll(); err != nil {
			t.Fatal(err)
		}
		if err := b.Broadcast("%d", 42); err != nil {
			t.Fatal(err)
		}
		if err := r.StopMain(0); err != nil {
			t.Fatal(err)
		}
		raw, err := os.Open(cfg.JumpshotPath)
		if err != nil {
			t.Fatal(err)
		}
		defer raw.Close()
		cf, err := clog2.Read(raw)
		if err != nil {
			t.Fatal(err)
		}
		_, rep, err := slog2.Convert(cf, slog2.ConvertOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.EqualDrawables
	}
	if got := run(-1); got == 0 {
		t.Error("no Equal Drawables with spread disabled and coarse clocks; expected collisions")
	}
	if got := run(2 * time.Millisecond); got != 0 {
		t.Errorf("Equal Drawables = %d with spread enabled, want 0", got)
	}
}
