package core

import (
	"testing"
)

// Satellite regression test for the hoisted Enabled() checks: with no
// logging service active, the Pilot calls that only exist to feed the
// logs must do zero formatting work — measured as zero allocations.
func TestDisabledLoggingCallsAllocFree(t *testing.T) {
	runAllocGate(t, false)
}

// The stats collector rides the same hot paths; turning it on must not
// reintroduce allocations into the gated calls.
func TestMetricsEnabledKeepsAllocGates(t *testing.T) {
	runAllocGate(t, true)
}

func runAllocGate(t *testing.T, metrics bool) {
	cfg, _ := testConfig(t, 2, "") // no services: no MPE, no native log
	cfg.Metrics = metrics
	r := mustRuntime(t, cfg)
	if metrics && r.Metrics() == nil {
		t.Fatal("Config.Metrics did not install a collector")
	}
	p, err := r.CreateProcess(func(self *Self, index int, arg any) int {
		ch := arg.(chan *Self)
		ch <- self
		<-ch // hold the worker until measurements finish
		return 0
	}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan *Self)
	p.SetArg(hold)
	main, err := r.StartAll()
	if err != nil {
		t.Fatal(err)
	}
	worker := <-hold
	defer func() {
		hold <- nil
		if err := r.StopMain(0); err != nil {
			t.Fatal(err)
		}
	}()

	// Warm callerLoc's PC cache: the first call per site formats and
	// stores the location; every later call is a read-locked map hit.
	_ = main.Log("warm")
	_ = main.StartTime()
	_ = main.EndTime()
	_ = worker.Log("warm")

	cases := []struct {
		name string
		fn   func()
	}{
		{"PI_Log", func() { _ = main.Log("checkpoint reached at step") }},
		{"PI_StartTime", func() { _ = main.StartTime() }},
		{"PI_EndTime", func() { _ = main.EndTime() }},
		{"PI_Log worker", func() { _ = worker.Log("worker checkpoint") }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(200, tc.fn); n != 0 {
			t.Errorf("%s with logging disabled allocates %.2f per run, want 0", tc.name, n)
		}
	}
}

// callerLoc must return the same "file.go:line" through the PC cache as
// the direct runtime.Caller formatting did, on both cold and warm paths.
func TestCallerLocStable(t *testing.T) {
	loc1 := callerLoc(0)
	loc2 := callerLoc(0)
	if loc1 == "" || loc2 == "" {
		t.Fatal("callerLoc returned empty location")
	}
	// Different lines of the same file; prefix identical, line differs.
	if loc1 == loc2 {
		t.Fatalf("distinct call sites produced identical locations %q", loc1)
	}
	same := func() string { return callerLoc(1) }
	a, b := same(), same()
	if a != b {
		t.Fatalf("one call site produced %q then %q", a, b)
	}
	const want = "alloc_test.go"
	if len(loc1) < len(want) || loc1[:len(want)] != want {
		t.Fatalf("callerLoc = %q, want prefix %q", loc1, want)
	}
}
