package core

import (
	"strings"
	"testing"
)

// Reduce over caret arrays: contributions carry their own length on the
// wire and must agree.
func TestReduceCaretArrays(t *testing.T) {
	const W = 3
	cfg, _ := testConfig(t, W+1, "")
	r := mustRuntime(t, cfg)
	var from []*Channel
	fn := func(self *Self, index int, arg any) int {
		vals := []int{index + 1, (index + 1) * 10}
		if err := from[index].Write("%^d", vals); err != nil {
			return 1
		}
		return 0
	}
	_, from, _ = buildStar(t, r, W, fn)
	red, err := r.CreateBundle(UsageReduce, from...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	var got []int
	if err := red.Reduce(OpSum, "%^d", &got); err != nil {
		t.Fatal(err)
	}
	if err := r.StopMain(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1+2+3 || got[1] != 60 {
		t.Fatalf("caret reduce = %v", got)
	}
}

// Reduce with mismatched caret lengths fails loudly at the endpoint.
func TestReduceCaretLengthMismatch(t *testing.T) {
	cfg, _ := testConfig(t, 3, "")
	r := mustRuntime(t, cfg)
	var from []*Channel
	fn := func(self *Self, index int, arg any) int {
		vals := make([]int, index+1) // different length per worker
		from[index].Write("%^d", vals)
		return 0
	}
	_, from, _ = buildStar(t, r, 2, fn)
	red, err := r.CreateBundle(UsageReduce, from...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	var got []int
	if err := red.Reduce(OpSum, "%^d", &got); err == nil {
		t.Fatal("mismatched caret reduce succeeded")
	}
	r.StopMain(0)
}

// Scatter and Gather reject non-portionable formats.
func TestScatterGatherFormatValidation(t *testing.T) {
	cfg, _ := testConfig(t, 3, "")
	r := mustRuntime(t, cfg)
	var to, from []*Channel
	fn := func(self *Self, index int, arg any) int { return 0 }
	to, from, _ = buildStar(t, r, 2, fn)
	sc, err := r.CreateBundle(UsageScatter, to...)
	if err != nil {
		t.Fatal(err)
	}
	ga, err := r.CreateBundle(UsageGather, from...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	// Scalar, caret, multi-conversion: all rejected.
	if err := sc.Scatter("%d", 1); err == nil {
		t.Error("scalar scatter accepted")
	}
	if err := sc.Scatter("%^d", []int{1, 2}); err == nil {
		t.Error("caret scatter accepted")
	}
	if err := sc.Scatter("%*d %*d", 1, []int{1}, 1, []int{2}); err == nil {
		t.Error("multi-conversion scatter accepted")
	}
	if err := ga.Gather("%s", new(string)); err == nil {
		t.Error("string gather accepted")
	}
	r.StopMain(0)
}

// Error level 3 validates read destinations before any message is
// consumed: a bad call must not desynchronise the channel.
func TestLevel3ReadValidationPreservesStream(t *testing.T) {
	cfg, _ := testConfig(t, 2, "")
	cfg.CheckLevel = 3
	r := mustRuntime(t, cfg)
	var ch *Channel
	p, _ := r.CreateProcess(func(self *Self, index int, arg any) int {
		ch.Write("%d", 41)
		ch.Write("%d", 42)
		return 0
	}, 0, nil)
	ch, _ = r.CreateChannel(p, r.MainProc())
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	// Wrong arity: rejected before consuming the first message.
	var v int
	if err := ch.Read("%d %d", &v); err == nil {
		t.Fatal("short arg list accepted at level 3")
	}
	// The stream is intact: both values still readable in order.
	var a, b int
	if err := ch.Read("%d", &a); err != nil {
		t.Fatal(err)
	}
	if err := ch.Read("%d", &b); err != nil {
		t.Fatal(err)
	}
	if a != 41 || b != 42 {
		t.Fatalf("stream desynchronised: %d %d", a, b)
	}
	r.StopMain(0)
}

// Write with surplus arguments is rejected at every level (argument
// count mismatch is a hard API error).
func TestWriteSurplusArgs(t *testing.T) {
	cfg, _ := testConfig(t, 2, "")
	cfg.CheckLevel = 0
	r := mustRuntime(t, cfg)
	p, _ := r.CreateProcess(func(self *Self, index int, arg any) int {
		var v int
		arg.(*Channel).Read("%d", &v)
		return 0
	}, 0, nil)
	ch, _ := r.CreateChannel(r.MainProc(), p)
	p.SetArg(ch)
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	if err := ch.Write("%d", 1, 2, 3); err == nil {
		t.Error("surplus write args accepted")
	}
	if err := ch.Write("%d", 1); err != nil {
		t.Fatal(err)
	}
	r.StopMain(0)
}

// The wire protocol's spec header survives hostile framing: a raw MPI
// message that is not a valid frame produces a diagnostic, not a panic.
func TestReadRejectsMalformedFrame(t *testing.T) {
	cfg, _ := testConfig(t, 2, "")
	r := mustRuntime(t, cfg)
	p, _ := r.CreateProcess(func(self *Self, index int, arg any) int { return 0 }, 0, nil)
	ch, _ := r.CreateChannel(p, r.MainProc())
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	// Inject a raw message on the channel's tag, bypassing the Pilot
	// framing (this simulates a corrupted transport).
	if err := r.World().Rank(p.Rank()).Send(0, ch.ID(), []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	var v int
	err := ch.Read("%d", &v)
	if err == nil {
		t.Fatal("malformed frame accepted")
	}
	if !strings.Contains(err.Error(), "frame") {
		t.Fatalf("unhelpful error: %v", err)
	}
	r.StopMain(0)
}

// IsLogging reflects the active services.
func TestIsLogging(t *testing.T) {
	cfg, _ := testConfig(t, 3, "cd")
	r := mustRuntime(t, cfg)
	self, err := r.StartAll()
	if err != nil {
		t.Fatal(err)
	}
	if !self.IsLogging(SvcNativeLog) || !self.IsLogging(SvcDeadlock) {
		t.Error("enabled services not reported")
	}
	if self.IsLogging(SvcJumpshot) {
		t.Error("jumpshot reported without j")
	}
	r.StopMain(0)
}

// A channel's MPI tag equals its ID and stays unique.
func TestChannelTagsUnique(t *testing.T) {
	cfg, _ := testConfig(t, 3, "")
	r := mustRuntime(t, cfg)
	fn := func(self *Self, index int, arg any) int { return 0 }
	p1, _ := r.CreateProcess(fn, 0, nil)
	p2, _ := r.CreateProcess(fn, 1, nil)
	seen := map[int]bool{}
	for _, pair := range [][2]*Process{{r.MainProc(), p1}, {r.MainProc(), p2}, {p1, p2}, {p2, p1}} {
		c, err := r.CreateChannel(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if seen[c.ID()] {
			t.Fatalf("duplicate channel id %d", c.ID())
		}
		seen[c.ID()] = true
	}
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	r.StopMain(0)
}
