package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/fmtspec"
	"repro/internal/mpe"
)

// ReduceOp selects the combining operation for PI_Reduce, mirroring
// Pilot's PI_SUM, PI_PROD, PI_MIN, PI_MAX.
type ReduceOp uint8

// Reduce operations.
const (
	OpSum ReduceOp = iota
	OpProd
	OpMin
	OpMax
)

// String implements fmt.Stringer.
func (o ReduceOp) String() string {
	switch o {
	case OpSum:
		return "PI_SUM"
	case OpProd:
		return "PI_PROD"
	case OpMin:
		return "PI_MIN"
	case OpMax:
		return "PI_MAX"
	}
	return fmt.Sprintf("ReduceOp(%d)", uint8(o))
}

// Reduce is PI_Reduce: the endpoint collects one contribution per channel
// and combines them elementwise with op, decoding the combined result into
// args (pointer arguments, as for Read). Workers send their contributions
// with ordinary Writes using a matching format. Contributions combine in
// channel order; %s is not reducible.
func (b *Bundle) Reduce(op ReduceOp, format string, args ...any) error {
	fn, loc := "PI_Reduce", callerLoc(1)
	r := b.r
	if err := r.requirePhase(fn, loc, phaseRunning); err != nil {
		return err
	}
	if err := b.requireUsage(fn, loc, UsageReduce); err != nil {
		return err
	}
	specs, err := r.parseFormat(fn, loc, format)
	if err != nil {
		return err
	}
	for _, s := range specs {
		if s.Kind == fmtspec.KindString {
			return errorf(fn, loc, "%%s cannot be reduced")
		}
	}
	end := b.startCollective(fn, loc)
	defer end()
	log := r.logger(b.endpoint.rank)

	// Per spec: one message per channel, combined as they arrive. The
	// per-channel FIFO order guarantees spec k from channel i precedes
	// spec k+1 from channel i.
	argI := 0
	for si, spec := range specs {
		var combined []byte
		for ci, c := range b.chans {
			r.arrowSpread() // per-arrow spread, receive side included
			m, err := c.recvOne(fn, loc)
			if err != nil {
				return err
			}
			wireFmt, payload, err := parseFrame(m.Data)
			if err != nil {
				return errorf(fn, loc, "on %s: %v", c.Name(), err)
			}
			if log.Enabled() {
				log.LogRecv(c.from.rank, c.id, len(m.Data))
				var cb mpe.Cargo
				log.EventBytes(r.events["MsgArrival"], cb.KV("chan", c.Name()).
					Str(" part: ").Int(ci+1).Str("/").Int(len(b.chans)).Bytes())
			}
			if r.cfg.CheckLevel >= 2 {
				if err := checkWireFormat(wireFmt, spec); err != nil {
					return errorf(fn, loc, "on %s: %v", c.Name(), err)
				}
			}
			if combined == nil {
				combined = append([]byte(nil), payload...)
				continue
			}
			combined, err = combinePayloads(spec, op, combined, payload)
			if err != nil {
				return errorf(fn, loc, "combining %s from %s: %v", spec, c.Name(), err)
			}
		}
		consumed, err := fmtspec.Decode(spec, combined, args[argI:])
		if err != nil {
			return errorf(fn, loc, "spec %d: %v", si+1, err)
		}
		argI += consumed
	}
	if argI != len(args) {
		return errorf(fn, loc, "format %q consumed %d arguments, %d supplied", format, argI, len(args))
	}
	return nil
}

// combinePayloads applies op elementwise over two wire payloads of the
// same spec. Caret payloads carry a 4-byte length header that must agree.
func combinePayloads(spec fmtspec.Spec, op ReduceOp, a, b []byte) ([]byte, error) {
	var header []byte
	if spec.Mode == fmtspec.Caret {
		if len(a) < 4 || len(b) < 4 {
			return nil, fmt.Errorf("caret payload missing header")
		}
		if na, nb := binary.LittleEndian.Uint32(a), binary.LittleEndian.Uint32(b); na != nb {
			return nil, fmt.Errorf("contributions have %d and %d elements", na, nb)
		}
		header, a, b = a[:4], a[4:], b[4:]
	}
	if len(a) != len(b) {
		return nil, fmt.Errorf("contribution sizes differ: %d vs %d bytes", len(a), len(b))
	}
	es := spec.Kind.ElemSize()
	if es == 0 || len(a)%es != 0 {
		return nil, fmt.Errorf("payload of %d bytes not a multiple of element size %d", len(a), es)
	}
	out := make([]byte, 0, len(header)+len(a))
	out = append(out, header...)
	tmp := make([]byte, es)
	for i := 0; i < len(a); i += es {
		if err := combineElem(spec.Kind, op, a[i:i+es], b[i:i+es], tmp); err != nil {
			return nil, err
		}
		out = append(out, tmp...)
	}
	return out, nil
}

func combineElem(kind fmtspec.Kind, op ReduceOp, a, b, dst []byte) error {
	switch kind {
	case fmtspec.KindChar:
		dst[0] = byte(intOp(op, int64(a[0]), int64(b[0])))
	case fmtspec.KindInt16:
		v := intOp(op, int64(int16(binary.LittleEndian.Uint16(a))), int64(int16(binary.LittleEndian.Uint16(b))))
		binary.LittleEndian.PutUint16(dst, uint16(v))
	case fmtspec.KindUint16:
		v := uintOp(op, uint64(binary.LittleEndian.Uint16(a)), uint64(binary.LittleEndian.Uint16(b)))
		binary.LittleEndian.PutUint16(dst, uint16(v))
	case fmtspec.KindInt, fmtspec.KindInt64:
		v := intOp(op, int64(binary.LittleEndian.Uint64(a)), int64(binary.LittleEndian.Uint64(b)))
		binary.LittleEndian.PutUint64(dst, uint64(v))
	case fmtspec.KindUint, fmtspec.KindUint64:
		v := uintOp(op, binary.LittleEndian.Uint64(a), binary.LittleEndian.Uint64(b))
		binary.LittleEndian.PutUint64(dst, v)
	case fmtspec.KindFloat32:
		v := floatOp(op,
			float64(math.Float32frombits(binary.LittleEndian.Uint32(a))),
			float64(math.Float32frombits(binary.LittleEndian.Uint32(b))))
		binary.LittleEndian.PutUint32(dst, math.Float32bits(float32(v)))
	case fmtspec.KindFloat64:
		v := floatOp(op,
			math.Float64frombits(binary.LittleEndian.Uint64(a)),
			math.Float64frombits(binary.LittleEndian.Uint64(b)))
		binary.LittleEndian.PutUint64(dst, math.Float64bits(v))
	default:
		return fmt.Errorf("kind %v is not reducible", kind)
	}
	return nil
}

func intOp(op ReduceOp, a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMin:
		if b < a {
			return b
		}
		return a
	default:
		if b > a {
			return b
		}
		return a
	}
}

func uintOp(op ReduceOp, a, b uint64) uint64 {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMin:
		if b < a {
			return b
		}
		return a
	default:
		if b > a {
			return b
		}
		return a
	}
}

func floatOp(op ReduceOp, a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMin:
		return math.Min(a, b)
	default:
		return math.Max(a, b)
	}
}
