package core

import (
	"testing"

	"repro/vis"
)

// The optional functions are "treated as independent events ...
// represented as bubbles with their return values shown": verify that
// PI_ChannelHasData, PI_TrySelect, PI_Log, PI_StartTime and PI_EndTime all
// land in the visual log as events with meaningful cargo.
func TestOptionalFunctionsAppearAsBubbles(t *testing.T) {
	cfg, _ := testConfig(t, 3, "j")
	r := mustRuntime(t, cfg)
	var ch1, ch2 *Channel
	release := make(chan struct{})
	fn := func(self *Self, index int, arg any) int {
		<-release
		if index == 0 {
			ch1.Write("%d", 1)
		} else {
			ch2.Write("%d", 2)
		}
		return 0
	}
	p1, _ := r.CreateProcess(fn, 0, nil)
	p2, _ := r.CreateProcess(fn, 1, nil)
	var err error
	if ch1, err = r.CreateChannel(p1, r.MainProc()); err != nil {
		t.Fatal(err)
	}
	if ch2, err = r.CreateChannel(p2, r.MainProc()); err != nil {
		t.Fatal(err)
	}
	sel, err := r.CreateBundle(UsageSelect, ch1, ch2)
	if err != nil {
		t.Fatal(err)
	}
	self, err := r.StartAll()
	if err != nil {
		t.Fatal(err)
	}

	if has, _ := ch1.HasData(); has {
		t.Fatal("data before release")
	}
	if idx, _ := sel.TrySelect(); idx != -1 {
		t.Fatal("try-select hit before release")
	}
	t0 := self.StartTime()
	self.Log("between the bubbles")
	t1 := self.EndTime()
	if t1 < t0 {
		t.Fatalf("time went backwards: %v .. %v", t0, t1)
	}
	close(release)
	for got := 0; got < 2; {
		idx, err := sel.Select()
		if err != nil {
			t.Fatal(err)
		}
		var v int
		if idx == 0 {
			ch1.Read("%d", &v)
		} else {
			ch2.Read("%d", &v)
		}
		got++
	}
	if err := r.StopMain(0); err != nil {
		t.Fatal(err)
	}

	f, _, err := vis.ConvertFile(cfg.JumpshotPath, vis.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	legend := vis.Legend(f, f.Start, f.End)
	counts := map[string]int{}
	for _, e := range legend {
		counts[e.Name] = e.Count
	}
	for name, want := range map[string]int{
		"PI_ChannelHasData": 1,
		"PI_TrySelect":      1,
		"PI_Log":            1,
		"PI_StartTime":      1,
		"PI_EndTime":        1,
		"PI_Select":         2,
	} {
		if counts[name] != want {
			t.Errorf("%s count = %d, want %d", name, counts[name], want)
		}
	}
	// Bubble popups carry return values / line numbers.
	for _, opts := range []vis.SearchOptions{
		{Name: "PI_ChannelHasData", Rank: -1, Cargo: "has: false"},
		{Name: "PI_TrySelect", Rank: -1, Cargo: "ready: -1"},
	} {
		if hits := vis.Search(f, opts); len(hits) != 1 {
			t.Errorf("search %+v: %d hits", opts, len(hits))
		}
	}
	// PI_Select's popup gives the ready channel index.
	selHits := vis.Search(f, vis.SearchOptions{Name: "PI_Select", Rank: -1})
	okPopup := 0
	for _, h := range selHits {
		if h.Kind == "state" && (h.Detail != "") {
			okPopup++
		}
	}
	if okPopup != 2 {
		t.Errorf("select states with popups: %d, want 2 (%v)", okPopup, selHits)
	}
}
