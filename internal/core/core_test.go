package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/clog2"
	"repro/internal/slog2"
)

// testConfig returns a Config writing logs into a temp dir, with warnings
// captured.
func testConfig(t *testing.T, nprocs int, services string) (Config, *bytes.Buffer) {
	t.Helper()
	dir := t.TempDir()
	var errBuf bytes.Buffer
	return Config{
		NumProcs:     nprocs,
		Services:     services,
		CheckLevel:   3,
		JumpshotPath: filepath.Join(dir, "test.clog2"),
		NativePath:   filepath.Join(dir, "test.log"),
		ArrowSpread:  -1, // keep tests fast; ablation tests opt in
		Stderr:       &errBuf,
	}, &errBuf
}

func mustRuntime(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewRuntime(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := NewRuntime(Config{NumProcs: 2, Services: "z"}); err == nil {
		t.Error("bad service letter accepted")
	}
	if _, err := NewRuntime(Config{NumProcs: 2, CheckLevel: 9}); err == nil {
		t.Error("bad check level accepted")
	}
	if _, err := NewRuntime(Config{NumProcs: 1, Services: "d"}); err == nil {
		t.Error("service process with 1 rank accepted")
	}
}

func TestParseArgs(t *testing.T) {
	cfg := Config{}
	rest, err := ParseArgs(&cfg, []string{"-pisvc=cj", "app-flag", "-picheck=2", "-piprocs=8", "input.csv"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Services != "cj" || cfg.CheckLevel != 2 || cfg.NumProcs != 8 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if len(rest) != 2 || rest[0] != "app-flag" || rest[1] != "input.csv" {
		t.Fatalf("rest = %v", rest)
	}
	if _, err := ParseArgs(&cfg, []string{"-picheck=x"}); err == nil {
		t.Error("bad -picheck accepted")
	}
	if _, err := ParseArgs(&cfg, []string{"-piprocs=x"}); err == nil {
		t.Error("bad -piprocs accepted")
	}
}

// The lab2 shape: main distributes work sizes and arrays, workers sum and
// report. Exercises %d, %*d and the whole lifecycle.
func TestMasterWorkerSum(t *testing.T) {
	const W = 5
	const NUM = 1000
	cfg, _ := testConfig(t, W+1, "")
	r := mustRuntime(t, cfg)

	toWorker := make([]*Channel, W)
	result := make([]*Channel, W)
	workerFunc := func(self *Self, index int, arg any) int {
		var myshare int
		if err := toWorker[index].Read("%d", &myshare); err != nil {
			t.Errorf("worker %d read size: %v", index, err)
			return 1
		}
		buf := make([]int, myshare)
		if err := toWorker[index].Read("%*d", myshare, buf); err != nil {
			t.Errorf("worker %d read data: %v", index, err)
			return 1
		}
		sum := 0
		for _, v := range buf {
			sum += v
		}
		if err := result[index].Write("%d", sum); err != nil {
			t.Errorf("worker %d write: %v", index, err)
			return 1
		}
		return 0
	}
	for i := 0; i < W; i++ {
		p, err := r.CreateProcess(workerFunc, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		var errc error
		toWorker[i], errc = r.CreateChannel(r.MainProc(), p)
		if errc != nil {
			t.Fatal(errc)
		}
		result[i], errc = r.CreateChannel(p, r.MainProc())
		if errc != nil {
			t.Fatal(errc)
		}
	}
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}

	numbers := make([]int, NUM)
	want := 0
	for i := range numbers {
		numbers[i] = i * 3
		want += numbers[i]
	}
	for i := 0; i < W; i++ {
		portion := NUM / W
		if i == W-1 {
			portion += NUM % W
		}
		if err := toWorker[i].Write("%d", portion); err != nil {
			t.Fatal(err)
		}
		if err := toWorker[i].Write("%*d", portion, numbers[i*(NUM/W):]); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for i := 0; i < W; i++ {
		var sum int
		if err := result[i].Read("%d", &sum); err != nil {
			t.Fatal(err)
		}
		total += sum
	}
	if err := r.StopMain(0); err != nil {
		t.Fatal(err)
	}
	if total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
}

func TestAllScalarKindsAcrossChannel(t *testing.T) {
	cfg, _ := testConfig(t, 2, "")
	r := mustRuntime(t, cfg)
	var (
		gotC  byte
		gotHD int16
		gotD  int
		gotLD int64
		gotU  uint
		gotF  float32
		gotLF float64
		gotS  string
		gotV  []float64
	)
	p, err := r.CreateProcess(func(self *Self, index int, arg any) int {
		ch := arg.(*Channel)
		if err := ch.Write("%c %hd %d %ld %u %f %lf %s %^lf",
			byte('z'), int16(-7), 123, int64(1)<<40, uint(9),
			float32(1.5), 2.25, "hello", []float64{3, 4, 5}); err != nil {
			t.Errorf("write: %v", err)
		}
		return 0
	}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := r.CreateChannel(p, r.MainProc())
	if err != nil {
		t.Fatal(err)
	}
	p.arg = ch
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	if err := ch.Read("%c %hd %d %ld %u %f %lf %s %^lf",
		&gotC, &gotHD, &gotD, &gotLD, &gotU, &gotF, &gotLF, &gotS, &gotV); err != nil {
		t.Fatal(err)
	}
	if err := r.StopMain(0); err != nil {
		t.Fatal(err)
	}
	if gotC != 'z' || gotHD != -7 || gotD != 123 || gotLD != 1<<40 ||
		gotU != 9 || gotF != 1.5 || gotLF != 2.25 || gotS != "hello" ||
		len(gotV) != 3 || gotV[0] != 3 {
		t.Fatalf("values corrupted: %c %d %d %d %d %v %v %q %v",
			gotC, gotHD, gotD, gotLD, gotU, gotF, gotLF, gotS, gotV)
	}
}

func TestPhaseEnforcement(t *testing.T) {
	cfg, _ := testConfig(t, 3, "")
	r := mustRuntime(t, cfg)
	p, _ := r.CreateProcess(func(self *Self, index int, arg any) int { return 0 }, 0, nil)
	ch, _ := r.CreateChannel(r.MainProc(), p)

	// I/O before StartAll fails.
	if err := ch.Write("%d", 1); err == nil {
		t.Error("Write in configuration phase succeeded")
	}
	if err := ch.Read("%d", new(int)); err == nil {
		t.Error("Read in configuration phase succeeded")
	}
	if err := r.StopMain(0); err == nil {
		t.Error("StopMain in configuration phase succeeded")
	}
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	// Configuration calls after StartAll fail.
	if _, err := r.CreateProcess(func(*Self, int, any) int { return 0 }, 0, nil); err == nil {
		t.Error("CreateProcess in execution phase succeeded")
	}
	if _, err := r.CreateChannel(r.MainProc(), p); err == nil {
		t.Error("CreateChannel in execution phase succeeded")
	}
	if _, err := r.StartAll(); err == nil {
		t.Error("second StartAll succeeded")
	}
	if err := ch.Write("%d", 7); err != nil {
		t.Fatal(err)
	}
	// Drain so the worker can exit... the worker never reads; eager send is fine.
	if err := r.StopMain(0); err != nil {
		t.Fatal(err)
	}
	if err := r.StopMain(0); err == nil {
		t.Error("second StopMain succeeded")
	}
}

func TestChannelValidation(t *testing.T) {
	cfg, _ := testConfig(t, 3, "")
	r := mustRuntime(t, cfg)
	p, _ := r.CreateProcess(func(*Self, int, any) int { return 0 }, 0, nil)
	if _, err := r.CreateChannel(nil, p); err == nil {
		t.Error("nil endpoint accepted")
	}
	if _, err := r.CreateChannel(p, p); err == nil {
		t.Error("self-channel accepted")
	}
	cfg2, _ := testConfig(t, 2, "")
	r2 := mustRuntime(t, cfg2)
	if _, err := r2.CreateChannel(r.MainProc(), r2.MainProc()); err == nil {
		t.Error("cross-runtime channel accepted")
	}
}

func TestProcessLimitEnforced(t *testing.T) {
	cfg, _ := testConfig(t, 3, "d") // 3 ranks: main + 1 worker + svc
	r := mustRuntime(t, cfg)
	if got := r.AvailableProcs(); got != 1 {
		t.Fatalf("AvailableProcs = %d, want 1", got)
	}
	if _, err := r.CreateProcess(func(*Self, int, any) int { return 0 }, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateProcess(func(*Self, int, any) int { return 0 }, 1, nil); err == nil {
		t.Error("process beyond limit accepted")
	}
	if got := r.AvailableProcs(); got != 0 {
		t.Fatalf("AvailableProcs = %d, want 0", got)
	}
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	if err := r.StopMain(0); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultNames(t *testing.T) {
	cfg, _ := testConfig(t, 3, "")
	r := mustRuntime(t, cfg)
	if got := r.MainProc().Name(); got != "PI_MAIN" {
		t.Errorf("main name %q", got)
	}
	p, _ := r.CreateProcess(func(*Self, int, any) int { return 0 }, 0, nil)
	if got := p.Name(); got != "P1" {
		t.Errorf("worker name %q", got)
	}
	ch, _ := r.CreateChannel(r.MainProc(), p)
	if got := ch.Name(); got != "C1" {
		t.Errorf("channel name %q", got)
	}
	ch.SetName("work")
	if got := ch.Name(); got != "work" {
		t.Errorf("renamed channel %q", got)
	}
	p.SetName("Decompressor")
	if got := p.Name(); got != "Decompressor" {
		t.Errorf("renamed process %q", got)
	}
}

// Error-check level 2: reader/writer format mismatch is reported at the
// reader with both formats named.
func TestLevel2FormatMismatch(t *testing.T) {
	cfg, _ := testConfig(t, 2, "")
	cfg.CheckLevel = 2
	r := mustRuntime(t, cfg)
	p, _ := r.CreateProcess(func(self *Self, index int, arg any) int {
		arg.(*Channel).Write("%d", 42)
		return 0
	}, 0, nil)
	ch, _ := r.CreateChannel(p, r.MainProc())
	p.arg = ch
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	var f float64
	err := ch.Read("%lf", &f)
	if err == nil {
		t.Fatal("format mismatch not detected at level 2")
	}
	if !strings.Contains(err.Error(), "%d") || !strings.Contains(err.Error(), "%lf") {
		t.Fatalf("mismatch error lacks formats: %v", err)
	}
	r.StopMain(0)
}

// At level 0/1 the same mismatch slips past the format check and is caught
// only by the payload-size check in decode.
func TestLevel0SkipsFormatCheck(t *testing.T) {
	cfg, _ := testConfig(t, 2, "")
	cfg.CheckLevel = 0
	r := mustRuntime(t, cfg)
	p, _ := r.CreateProcess(func(self *Self, index int, arg any) int {
		arg.(*Channel).Write("%d", 42) // 8 bytes on the wire
		return 0
	}, 0, nil)
	ch, _ := r.CreateChannel(p, r.MainProc())
	p.arg = ch
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	var f float64
	// Same wire size: decodes without complaint at level 0 (garbage in,
	// garbage out — exactly what the check level buys you).
	if err := ch.Read("%lf", &f); err != nil {
		t.Fatalf("level 0 read rejected: %v", err)
	}
	r.StopMain(0)
}

func TestNoMPEWarning(t *testing.T) {
	cfg, errBuf := testConfig(t, 2, "j")
	cfg.NoMPE = true
	r := mustRuntime(t, cfg)
	if !strings.Contains(errBuf.String(), "not available") {
		t.Fatalf("missing MPE warning, stderr: %q", errBuf.String())
	}
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	if err := r.StopMain(0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cfg.JumpshotPath); !os.IsNotExist(err) {
		t.Fatal("jumpshot log written despite NoMPE")
	}
}

// End-to-end visual log: run a program with -pisvc=j, read the CLOG-2,
// convert to SLOG-2, and verify the figure-level structure.
func TestJumpshotLogEndToEnd(t *testing.T) {
	cfg, _ := testConfig(t, 3, "j")
	r := mustRuntime(t, cfg)
	chans := make([]*Channel, 2)
	for i := 0; i < 2; i++ {
		p, err := r.CreateProcess(func(self *Self, index int, arg any) int {
			var v int
			if err := chans[index].Read("%d", &v); err != nil {
				return 1
			}
			return 0
		}, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		chans[i], err = r.CreateChannel(r.MainProc(), p)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := chans[i].Write("%d", i*10); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.StopMain(0); err != nil {
		t.Fatal(err)
	}
	if r.WrapUpTime() <= 0 {
		t.Error("wrap-up time not measured")
	}

	raw, err := os.Open(cfg.JumpshotPath)
	if err != nil {
		t.Fatalf("no CLOG-2 produced: %v", err)
	}
	defer raw.Close()
	cf, err := clog2.Read(raw)
	if err != nil {
		t.Fatal(err)
	}
	sf, rep, err := slog2.Convert(cf, slog2.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sf.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if rep.NestingErrors != 0 || rep.UnmatchedSends != 0 || rep.UnmatchedRecvs != 0 {
		t.Fatalf("conversion problems: %+v\n%v", rep, rep.Warnings)
	}
	states, arrows, _ := sf.All()
	// Expect: Configure state, 3 Compute states (main + 2 workers),
	// 2 Write states, 2 Read states; 2 arrows.
	count := func(name string) int {
		idx := sf.CategoryIndex(name)
		n := 0
		for _, s := range states {
			if s.Cat == idx {
				n++
			}
		}
		return n
	}
	if got := count("PI_Configure"); got != 1 {
		t.Errorf("Configure states = %d, want 1", got)
	}
	if got := count("Compute"); got != 3 {
		t.Errorf("Compute states = %d, want 3", got)
	}
	if got := count("PI_Write"); got != 2 {
		t.Errorf("Write states = %d, want 2", got)
	}
	if got := count("PI_Read"); got != 2 {
		t.Errorf("Read states = %d, want 2", got)
	}
	if len(arrows) != 2 {
		t.Errorf("arrows = %d, want 2", len(arrows))
	}
	// Reads nest within their process's Compute state.
	readIdx := sf.CategoryIndex("PI_Read")
	compIdx := sf.CategoryIndex("Compute")
	for _, s := range states {
		if s.Cat != readIdx {
			continue
		}
		nested := false
		for _, c := range states {
			if c.Cat == compIdx && c.Rank == s.Rank && c.Start <= s.Start && s.End <= c.End {
				nested = true
			}
		}
		if !nested {
			t.Errorf("PI_Read on rank %d not nested in Compute", s.Rank)
		}
	}
}

// PI_Abort loses the MPE log but the native log survives — Section III.B
// and the paper's conclusion about Pilot's existing native log.
func TestAbortLosesMPELogButNativeSurvives(t *testing.T) {
	cfg, errBuf := testConfig(t, 3, "cj")
	r := mustRuntime(t, cfg)
	p, err := r.CreateProcess(func(self *Self, index int, arg any) int {
		self.Log("about to abort")
		time.Sleep(10 * time.Millisecond) // let the log line travel
		self.Abort(7, "fatal problem detected")
		return 1
	}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = p
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	err = r.StopMain(0)
	if err == nil {
		t.Fatal("StopMain after abort returned nil")
	}
	if !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("unexpected StopMain error: %v", err)
	}
	if !r.Aborted() {
		t.Fatal("Aborted() = false")
	}
	if _, statErr := os.Stat(cfg.JumpshotPath); !os.IsNotExist(statErr) {
		t.Error("MPE log exists despite abort")
	}
	if !strings.Contains(errBuf.String(), "MPE log lost") {
		t.Errorf("missing lost-log warning: %q", errBuf.String())
	}
	native, readErr := os.ReadFile(cfg.NativePath)
	if readErr != nil {
		t.Fatalf("native log missing: %v", readErr)
	}
	if !strings.Contains(string(native), "PI_Log") {
		t.Errorf("native log lacks entries: %q", native)
	}
}

func TestNativeLogFormat(t *testing.T) {
	cfg, _ := testConfig(t, 3, "c")
	r := mustRuntime(t, cfg)
	p, _ := r.CreateProcess(func(self *Self, index int, arg any) int {
		var v int
		arg.(*Channel).Read("%d", &v)
		return 0
	}, 0, nil)
	ch, _ := r.CreateChannel(r.MainProc(), p)
	p.arg = ch
	ch.SetName("jobs")
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	if err := ch.Write("%d", 5); err != nil {
		t.Fatal(err)
	}
	if err := r.StopMain(0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cfg.NativePath)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"PI_Write", "PI_Read", "jobs", "P1 exited"} {
		if !strings.Contains(text, want) {
			t.Errorf("native log missing %q:\n%s", want, text)
		}
	}
	// Every line carries an arrival timestamp.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if !strings.HasPrefix(line, "[") {
			t.Errorf("line without timestamp: %q", line)
		}
	}
}

func TestWorkerPanicAborts(t *testing.T) {
	cfg, errBuf := testConfig(t, 2, "")
	r := mustRuntime(t, cfg)
	r.CreateProcess(func(self *Self, index int, arg any) int {
		panic("worker exploded")
	}, 0, nil)
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	if err := r.StopMain(0); err == nil {
		t.Fatal("StopMain after worker panic returned nil")
	}
	if !strings.Contains(errBuf.String(), "panicked") {
		t.Errorf("missing panic diagnostic: %q", errBuf.String())
	}
}
