// Package core implements the Pilot runtime: the process/channel
// programming model from the paper ("A friendly face for MPI"), its
// fscanf/fprintf-style typed I/O, collective operations over bundles,
// run-time services selectable like Pilot's -pisvc command-line option —
// native call logging (c), the integrated deadlock detector (d), and the
// MPE/Jumpshot visual log (j) that is the paper's contribution — plus the
// multi-level error checking Pilot is known for.
//
// The public pilot package re-exports this API; see that package for the
// C-to-Go name mapping.
package core

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/mpi"
)

// Service letters accepted in Config.Services, matching Pilot's -pisvc=
// option values.
const (
	// SvcNativeLog ("c") streams every API call to a text log written as
	// events arrive at the service process — Pilot's original logging
	// facility, with the three shortcomings Section I describes.
	SvcNativeLog = 'c'
	// SvcDeadlock ("d") enables the integrated deadlock detector.
	SvcDeadlock = 'd'
	// SvcJumpshot ("j") enables MPE logging for Jumpshot — the paper's
	// new facility.
	SvcJumpshot = 'j'
)

// DefaultArrowSpread is the artificial delay inserted between the arrows
// of a collective fan-out, the paper's fix for superimposed drawables:
// "with just 1 ms of delay per arrow, the problem is eliminated".
const DefaultArrowSpread = time.Millisecond

// Config is everything PI_Configure needs. The zero value is not runnable;
// NumProcs must be set.
type Config struct {
	// NumProcs is the total number of MPI ranks to simulate, exactly like
	// mpirun -np N: PI_MAIN takes rank 0, created processes take ranks
	// 1..N-2 or N-1, and one rank is reserved for the service process when
	// native logging or deadlock detection is on.
	NumProcs int

	// Services holds the -pisvc= letters: any combination of "c", "d", "j".
	Services string

	// CheckLevel is Pilot's error-check level 0–3: 1 = API-abuse checks,
	// 2 = reader/writer format matching, 3 = full argument validation.
	CheckLevel int

	// NoMPE simulates a Pilot installation built without the optional MPE
	// library: requesting the "j" service then prints a warning and
	// disables the visual log instead of failing.
	NoMPE bool

	// RobustLog implements the paper's future work: with the "j" service,
	// every rank also writes each log record through to a per-rank spill
	// file, and if the program aborts (PI_Abort or deadlock) the spills
	// are salvaged into a usable CLOG-2 at JumpshotPath instead of the
	// log being lost. Costs one buffered write + flush per record.
	RobustLog bool

	// JumpshotPath is where the merged CLOG-2 file is written at StopMain
	// (default "pilot.clog2").
	JumpshotPath string

	// NativePath is where the native text log is streamed (default
	// "pilot.log").
	NativePath string

	// ArrowSpread is the delay between per-channel sends in collective
	// operations; 0 selects DefaultArrowSpread, negative disables the
	// spread (used by the Equal-Drawables ablation).
	ArrowSpread time.Duration

	// Clocks optionally supplies per-rank wallclocks (offset, drift,
	// resolution), exercising MPE's clock synchronisation. Missing entries
	// share one real clock.
	Clocks []clock.Source

	// EagerLimit is passed to the MPI substrate (0 = default).
	EagerLimit int

	// Transport selects the rank substrate: "" or "inproc" runs every
	// rank as a goroutine in this process (the default — deterministic,
	// supports Manual clocks); "socket" and "tcp" run every rank as its
	// own OS process over unix-domain or loopback TCP sockets,
	// re-executing this program once per rank (see mpi.TransportSocket).
	// The -pitransport= flag sets it.
	Transport string

	// SpawnCommand overrides the argv launched once per remote rank under
	// a multi-process transport. Empty re-executes the current binary
	// with its original arguments, which is correct whenever the Pilot
	// configuration is a pure function of argv (the usual case).
	SpawnCommand []string

	// SpawnEnv appends environment entries ("K=V") to each spawned rank
	// process.
	SpawnEnv []string

	// Faults installs a deterministic fault-injection plan into the MPI
	// substrate (nil = none); see mpi.FaultPlan and mpi.ParseFaultPlan
	// for the spec grammar. The runtime threads every injected fault into
	// the active logs as a FaultInjected solo event, and resolves
	// mpi.CrashAuto to CrashStop when the deadlock detector is on (the
	// crash becomes a diagnosed deadlock) and CrashAbort otherwise (a
	// clean ErrAborted unwind) — an injected crash never leaves a silent
	// hang.
	Faults *mpi.FaultPlan

	// Metrics enables the live observability collector (package stats):
	// per-rank and per-channel counters and wait-time histograms gathered
	// on the hot path and exported via expvar. Off by default; the
	// -pistats flag turns it on.
	Metrics bool

	// DeadlockGrace is how long the detector waits for late completion
	// events before trusting a suspected deadlock (default 50 ms).
	DeadlockGrace time.Duration

	// Stderr receives warnings and deadlock diagnostics (default
	// os.Stderr).
	Stderr io.Writer
}

// normalized fills defaults and validates. It returns a copy.
func (c Config) normalized() (Config, error) {
	if c.NumProcs < 1 {
		return c, errorf("PI_Configure", "", "NumProcs is %d; a Pilot program needs at least PI_MAIN", c.NumProcs)
	}
	for _, ch := range c.Services {
		switch ch {
		case SvcNativeLog, SvcDeadlock, SvcJumpshot:
		default:
			return c, errorf("PI_Configure", "", "unknown service letter %q in -pisvc=%s (valid: c, d, j)", ch, c.Services)
		}
	}
	if c.CheckLevel < 0 || c.CheckLevel > 3 {
		return c, errorf("PI_Configure", "", "check level %d out of range 0-3", c.CheckLevel)
	}
	if c.JumpshotPath == "" {
		c.JumpshotPath = "pilot.clog2"
	}
	if c.NativePath == "" {
		c.NativePath = "pilot.log"
	}
	if c.ArrowSpread == 0 {
		c.ArrowSpread = DefaultArrowSpread
	}
	if c.DeadlockGrace <= 0 {
		c.DeadlockGrace = 50 * time.Millisecond
	}
	switch c.Transport {
	case "", mpi.TransportInproc:
	case mpi.TransportSocket, mpi.TransportTCP:
		if len(c.Clocks) > 0 {
			// A per-rank clock.Source lives in one address space; a Manual
			// clock ticked by the test harness cannot reach ranks running
			// in other processes.
			return c, errorf("PI_Configure", "", "custom Clocks need the in-process transport, not %q", c.Transport)
		}
	default:
		return c, errorf("PI_Configure", "", "unknown transport %q (valid: inproc, socket, tcp)", c.Transport)
	}
	return c, nil
}

// HasService reports whether the given service letter is enabled.
func (c Config) HasService(letter rune) bool {
	return strings.ContainsRune(c.Services, letter)
}

// needsSvcRank reports whether a rank must be reserved for the service
// process. As in Pilot, the native log and the deadlock detector share one
// dedicated process; MPE logging costs no extra rank (the asymmetry
// measured in Section III.E).
func (c Config) needsSvcRank() bool {
	return c.HasService(SvcNativeLog) || c.HasService(SvcDeadlock)
}

// ParseArgs consumes Pilot's command-line options from args and applies
// them to cfg, returning the remaining arguments. Recognised options,
// exactly as in Pilot:
//
//	-pisvc=LETTERS   enable services, e.g. -pisvc=cj
//	-picheck=N       set the error-check level 0-3
//	-piprocs=N       world size (stands in for mpirun -np N)
//	-pifaults=SPEC   install a fault-injection plan (mpi.ParseFaultPlan);
//	                 besides the per-operation kinds this includes the
//	                 wire-level ones — wiredelay, wirecorrupt, wiredup,
//	                 wiredrop, wirereset, wirestall — which the socket
//	                 transport injects deterministically on its links,
//	                 e.g. -pifaults="seed=7;wiredrop:rank=1,op=3"
//	-pistats         enable the live metrics collector (package stats)
//	-pitransport=T   rank substrate: inproc (default), socket, tcp
//
// Unknown arguments pass through untouched, as PI_Configure leaves the
// application's own flags alone.
func ParseArgs(cfg *Config, args []string) ([]string, error) {
	var rest []string
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "-pisvc="):
			cfg.Services = a[len("-pisvc="):]
		case strings.HasPrefix(a, "-picheck="):
			n, err := strconv.Atoi(a[len("-picheck="):])
			if err != nil {
				return nil, errorf("PI_Configure", "", "bad -picheck value %q", a)
			}
			cfg.CheckLevel = n
		case strings.HasPrefix(a, "-piprocs="):
			n, err := strconv.Atoi(a[len("-piprocs="):])
			if err != nil {
				return nil, errorf("PI_Configure", "", "bad -piprocs value %q", a)
			}
			cfg.NumProcs = n
		case strings.HasPrefix(a, "-pifaults="):
			plan, err := mpi.ParseFaultPlan(a[len("-pifaults="):])
			if err != nil {
				return nil, errorf("PI_Configure", "", "bad -pifaults value %q: %v", a, err)
			}
			cfg.Faults = plan
		case a == "-pistats":
			cfg.Metrics = true
		case strings.HasPrefix(a, "-pitransport="):
			cfg.Transport = a[len("-pitransport="):]
		default:
			rest = append(rest, a)
		}
	}
	return rest, nil
}

// Error is the diagnostic type for all Pilot API failures. Pilot prints
// diagnostics "that pinpoint the problem right to the line of source
// code"; Error carries the operation, the caller's location, and the
// explanation.
type Error struct {
	Op  string // Pilot function name, e.g. "PI_Read"
	Loc string // caller file:line, when captured
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Loc != "" {
		return fmt.Sprintf("pilot: %s at %s: %s", e.Op, e.Loc, e.Msg)
	}
	return fmt.Sprintf("pilot: %s: %s", e.Op, e.Msg)
}

func errorf(op, loc, format string, args ...any) *Error {
	return &Error{Op: op, Loc: loc, Msg: fmt.Sprintf(format, args...)}
}
