package core

import "repro/internal/clock"

// coarseClocks builds n rank clocks sharing one timebase but truncated to
// the given resolution, emulating a coarse MPI_Wtime.
func coarseClocks(n int, resolution float64) []clock.Source {
	base := clock.NewReal()
	out := make([]clock.Source, n)
	for i := range out {
		out[i] = clock.NewMonotonic(clock.NewSkewed(base, 0, 0, resolution))
	}
	return out
}
