package core

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/colors"
	"repro/internal/deadlock"
	"repro/internal/mpe"
	"repro/internal/mpi"
	"repro/internal/stats"
)

// Runtime phases: Pilot programs have a configuration phase (PI_Configure
// to PI_StartAll) and an execution phase (PI_StartAll to PI_StopMain).
const (
	phaseConfig = iota
	phaseRunning
	phaseStopped
)

// AbortCodeDeadlock is the abort code used when the detector fires.
const AbortCodeDeadlock = 134

// WorkFunc is a Pilot process body: Pilot's int f(int index, void *arg),
// with a Self handle supplying the process-context operations (PI_Log,
// PI_StartTime, PI_Abort...).
type WorkFunc func(self *Self, index int, arg any) int

// Runtime is one configured Pilot program: the Go equivalent of the
// global state PI_Configure sets up.
type Runtime struct {
	cfg     Config
	world   *mpi.World
	metrics *stats.Collector // nil unless Config.Metrics

	mu       sync.Mutex
	phase    int
	procs    []*Process
	channels []*Channel
	bundles  []*Bundle

	svcRank int // -1 when no service process is reserved
	jlog    bool

	mpe    *mpe.Group
	states map[string]mpe.StateID
	events map[string]mpe.EventID

	formatCache sync.Map // format string -> []fmtspec.Spec

	wgWork sync.WaitGroup // workers done with their work functions
	wgAll  sync.WaitGroup // workers + service fully finished

	mainSelf *Self

	wrapUp     time.Duration
	deadlockMu sync.Mutex
	deadlockRp *deadlock.Report
}

// Process is a created Pilot process (PI_PROCESS*).
type Process struct {
	r     *Runtime
	rank  int
	fn    WorkFunc
	index int
	arg   any

	nameMu sync.Mutex
	name   string
}

// Rank returns the process's MPI rank (0 = PI_MAIN).
func (p *Process) Rank() int { return p.rank }

// Name returns the process's display name (default "P<rank>", "PI_MAIN"
// for rank 0).
func (p *Process) Name() string {
	p.nameMu.Lock()
	defer p.nameMu.Unlock()
	return p.name
}

// SetName assigns a meaningful display name, "precisely for the purpose of
// logging and debugging" (PI_SetName).
func (p *Process) SetName(name string) {
	p.nameMu.Lock()
	p.name = name
	p.nameMu.Unlock()
}

// SetArg replaces the opaque argument passed to the work function. It is
// only meaningful during the configuration phase, where it lets a process
// receive a channel or bundle created after the process itself (C Pilot
// programs use globals; Go programs often prefer explicit wiring).
func (p *Process) SetArg(arg any) { p.arg = arg }

// NewRuntime is PI_Configure: it validates cfg, builds the MPI world,
// reserves the service rank when needed, prepares the MPE logging state,
// and enters the configuration phase.
func NewRuntime(cfg Config) (*Runtime, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	r := &Runtime{cfg: cfg, svcRank: -1}
	if cfg.needsSvcRank() {
		if cfg.NumProcs < 2 {
			return nil, errorf("PI_Configure", "", "services %q need a dedicated process, but NumProcs is %d", cfg.Services, cfg.NumProcs)
		}
		r.svcRank = cfg.NumProcs - 1
	}
	var faults *mpi.FaultPlan
	if cfg.Faults != nil {
		// Private copy: the runtime rewrites Mode and OnFault, and the
		// caller may reuse its plan for a replay.
		p := *cfg.Faults
		p.Rules = append([]mpi.FaultRule(nil), cfg.Faults.Rules...)
		if p.Mode == mpi.CrashAuto {
			if cfg.HasService(SvcDeadlock) {
				// Let the crashed rank drop out quietly; the detector sees
				// its exit notice and diagnoses the stranded peers.
				p.Mode = mpi.CrashStop
			} else {
				// Without a detector a stopped rank would strand its peers
				// in a silent hang, so tear the whole world down instead.
				p.Mode = mpi.CrashAbort
			}
		}
		userCB := p.OnFault
		p.OnFault = func(ev mpi.FaultEvent) {
			// Runs on the faulting rank's own goroutine, so the per-rank
			// MPE logger is safe to use directly. Event truncates the
			// cargo to clog2.MaxCargo on the write side.
			if r.jlog {
				r.logger(ev.Rank).Event(r.events["FaultInjected"], ev.String())
			}
			if r.nativeOn() {
				r.nativeLog(ev.Rank, "FAULT "+ev.String())
			}
			if userCB != nil {
				userCB(ev)
			}
		}
		faults = &p
	}
	var metrics *stats.Collector
	if cfg.Metrics {
		metrics = stats.New(cfg.NumProcs)
		stats.Publish(metrics)
	}
	r.metrics = metrics
	r.world, err = mpi.Start(cfg.NumProcs, mpi.Options{
		Clocks:       cfg.Clocks,
		EagerLimit:   cfg.EagerLimit,
		Faults:       faults,
		Metrics:      metrics,
		Transport:    cfg.Transport,
		SpawnCommand: cfg.SpawnCommand,
		SpawnEnv:     cfg.SpawnEnv,
	})
	if err != nil {
		return nil, errorf("PI_Configure", "", "starting MPI transport: %v", err)
	}

	r.jlog = cfg.HasService(SvcJumpshot)
	if r.jlog && cfg.NoMPE {
		// The paper's graceful degradation: "If the user asks for an MPE
		// log (-pisvc=j) but without MPE being built in their Pilot
		// installation, a warning will be printed."
		r.warnf("pilot: warning: logging for Jumpshot is not available (Pilot built without MPE)")
		r.jlog = false
	}
	r.mpe = mpe.NewGroup(r.world, r.jlog)
	if r.jlog && cfg.RobustLog {
		r.mpe.EnableSpill(cfg.JumpshotPath)
	}
	r.states = map[string]mpe.StateID{}
	r.events = map[string]mpe.EventID{}
	stateNames := make([]string, 0, len(colors.StateColors))
	for name := range colors.StateColors {
		stateNames = append(stateNames, name)
	}
	sort.Strings(stateNames) // deterministic category order across runs
	for _, name := range stateNames {
		r.states[name] = r.mpe.DescribeState(name, colors.StateColor(name).Name)
	}
	for _, name := range []string{"MsgArrival", "MsgDeparture", "PI_Log",
		"PI_TrySelect", "PI_ChannelHasData", "PI_StartTime", "PI_EndTime"} {
		r.events[name] = r.mpe.DescribeEvent(name, colors.EventColor.Name)
	}
	// Faults and deadlock reports get their own bubble colours so failure
	// modes are visible at a glance in the converted timeline.
	r.events["FaultInjected"] = r.mpe.DescribeEvent("FaultInjected", colors.FaultEventColor.Name)
	r.events["Deadlock"] = r.mpe.DescribeEvent("Deadlock", colors.DeadlockEventColor.Name)

	if r.jlog && cfg.RobustLog && r.world.Local(0) {
		// Definitions are rank 0's to spill; in a multi-process world a
		// non-zero rank writing them would collide with the orchestrator
		// over the same defs file.
		if err := r.mpe.SpillDefs(); err != nil {
			r.warnf("pilot: warning: cannot write spill definitions: %v", err)
		}
	}

	main := &Process{r: r, rank: 0, name: "PI_MAIN"}
	r.procs = []*Process{main}

	// The Configuration Phase is itself displayed "as a bisque coloured
	// state rectangle" from PI_Configure to PI_StartAll. Rank 0's records
	// belong to the process hosting rank 0; a joined rank logging them
	// would duplicate them (and cross-write rank 0's spill file).
	if r.world.Local(0) {
		r.logger(0).StateStart(r.states["PI_Configure"], "phase: configuration")
	}
	return r, nil
}

func (r *Runtime) warnf(format string, args ...any) {
	w := r.cfg.Stderr
	if w == nil {
		w = os.Stderr
	}
	fmt.Fprintf(w, format+"\n", args...)
}

// Config returns the (normalised) configuration in effect.
func (r *Runtime) Config() Config { return r.cfg }

// World exposes the MPI substrate, chiefly for tests and benches.
func (r *Runtime) World() *mpi.World { return r.world }

// Metrics returns the live stats collector (nil unless Config.Metrics).
func (r *Runtime) Metrics() *stats.Collector { return r.metrics }

// MainProc returns the PI_MAIN process handle.
func (r *Runtime) MainProc() *Process { return r.procs[0] }

// AvailableProcs returns how many worker processes can still be created:
// the world minus PI_MAIN minus the service rank, as in Pilot where native
// logging "does consume an additional MPI rank ... since one worker is
// displaced".
func (r *Runtime) AvailableProcs() int {
	n := r.cfg.NumProcs - 1
	if r.svcRank >= 0 {
		n--
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return n - (len(r.procs) - 1)
}

// Aborted reports whether the program was aborted (PI_Abort or deadlock).
func (r *Runtime) Aborted() bool { return r.world.Aborted() }

// Traffic returns the program's total message traffic (count and bytes of
// Pilot data messages; service and logging traffic excluded).
func (r *Runtime) Traffic() mpi.Traffic { return r.world.TotalTraffic() }

// WrapUpTime returns how long the MPE log collection, merge and write took
// at StopMain — the wrap-up cost measured in Section III.E.
func (r *Runtime) WrapUpTime() time.Duration { return r.wrapUp }

// DeadlockReport returns the detector's report, or nil.
func (r *Runtime) DeadlockReport() *deadlock.Report {
	r.deadlockMu.Lock()
	defer r.deadlockMu.Unlock()
	return r.deadlockRp
}

func (r *Runtime) setDeadlockReport(rep *deadlock.Report) {
	r.deadlockMu.Lock()
	r.deadlockRp = rep
	r.deadlockMu.Unlock()
}

func (r *Runtime) logger(rank int) *mpe.Logger { return r.mpe.Logger(rank) }

// requirePhase fails with a Pilot-style diagnostic when called in the
// wrong phase — the most common API abuse, caught at every check level.
func (r *Runtime) requirePhase(op, loc string, want int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.phase != want {
		names := []string{"configuration", "execution", "stopped"}
		return errorf(op, loc, "called in %s phase; allowed only in %s phase", names[r.phase], names[want])
	}
	return nil
}

// CreateProcess is PI_CreateProcess: it registers a work function to run
// as the next free rank. Only legal in the configuration phase.
func (r *Runtime) CreateProcess(fn WorkFunc, index int, arg any) (*Process, error) {
	loc := callerLoc(1)
	if err := r.requirePhase("PI_CreateProcess", loc, phaseConfig); err != nil {
		return nil, err
	}
	if fn == nil {
		return nil, errorf("PI_CreateProcess", loc, "nil work function")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rank := len(r.procs)
	limit := r.cfg.NumProcs
	if r.svcRank >= 0 {
		limit--
	}
	if rank >= limit {
		return nil, errorf("PI_CreateProcess", loc,
			"no free process: %d of %d ranks used (1 for PI_MAIN%s); raise NumProcs",
			rank, r.cfg.NumProcs, svcNote(r.svcRank))
	}
	p := &Process{r: r, rank: rank, fn: fn, index: index, arg: arg, name: fmt.Sprintf("P%d", rank)}
	r.procs = append(r.procs, p)
	return p, nil
}

func svcNote(svcRank int) string {
	if svcRank >= 0 {
		return ", 1 for the service process"
	}
	return ""
}

// StartAll is PI_StartAll: every created process begins executing its work
// function on its own rank, the service process starts if configured, and
// the caller continues as PI_MAIN. It returns PI_MAIN's Self.
func (r *Runtime) StartAll() (*Self, error) {
	loc := callerLoc(1)
	if err := r.requirePhase("PI_StartAll", loc, phaseConfig); err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.phase = phaseRunning
	procs := append([]*Process(nil), r.procs...)
	// The channel table is final now; size the per-channel metric cells
	// (channel IDs are 1-based wire tags).
	r.metrics.SetChannels(len(r.channels))
	r.mu.Unlock()

	if local := r.world.LocalRank(); local > 0 {
		// This process was spawned to host one non-zero rank: run that
		// rank's role to completion and exit, as a real MPI rank would.
		// Code after PI_StartAll only ever executes in the rank 0 process.
		r.runLocalRank(local, procs)
		panic("unreachable") // runLocalRank exits the process
	}

	r.logger(0).StateEnd(r.states["PI_Configure"], "")

	if r.svcRank >= 0 && r.world.Local(r.svcRank) {
		r.wgAll.Add(1)
		go r.svcMain()
	}
	for _, p := range procs[1:] {
		if !r.world.Local(p.rank) {
			continue // runs in its own process
		}
		r.wgWork.Add(1)
		r.wgAll.Add(1)
		go r.workerMain(p)
	}

	r.mainSelf = &Self{r: r, proc: procs[0]}
	// The Execution Phase: "PI_StartAll and PI_StopMain bracket a clear
	// execution time period ... represented by a gray coloured state
	// rectangle, named as Compute."
	r.logger(0).StateStart(r.states["Compute"], "proc: PI_MAIN")
	return r.mainSelf, nil
}

// runLocalRank runs a spawned process's one rank synchronously — the
// worker whose rank this process hosts, or the service process — then
// says goodbye to the transport and exits with the world's abort code.
// It never returns: a spawned rank process has no PI_MAIN to continue
// as. Ranks beyond the created processes simply exit, mirroring the
// in-process world where no goroutine exists for them.
func (r *Runtime) runLocalRank(local int, procs []*Process) {
	switch {
	case local == r.svcRank:
		r.wgAll.Add(1)
		r.svcMain()
	case local < len(procs):
		p := procs[local]
		r.wgWork.Add(1)
		r.wgAll.Add(1)
		r.workerMain(p)
	}
	if err := r.world.Shutdown(); err != nil {
		r.warnf("pilot: warning: rank %d transport shutdown: %v", local, err)
	}
	code := 0
	if r.world.Aborted() {
		code = r.world.AbortCode()
	}
	os.Exit(code)
}

// workerMain is the goroutine wrapper for one Pilot process.
func (r *Runtime) workerMain(p *Process) {
	defer r.wgAll.Done()
	self := &Self{r: r, proc: p}
	log := r.logger(p.rank)
	if log.Enabled() {
		var cb mpe.Cargo
		log.StateStartBytes(r.states["Compute"],
			cb.KV("proc", p.Name()).Str(" idx: ").Int(p.index).Bytes())
	}

	func() {
		defer func() {
			if rec := recover(); rec != nil {
				r.warnf("pilot: process %s (rank %d) panicked: %v", p.Name(), p.rank, rec)
				r.world.Rank(p.rank).Abort(1)
			}
		}()
		p.fn(self, p.index, p.arg)
	}()

	log.StateEnd(r.states["Compute"], "")
	r.svcExited(p.rank)
	r.wgWork.Done()
	if r.jlog {
		// Participate in the collective MPE wrap-up; errors surface at
		// rank 0 (an aborted world loses the log there too).
		_ = log.Finish(nil)
	}
}

// StopMain is PI_StopMain: PI_MAIN calls it after its own work; it waits
// for every work function to return, shuts down the service process,
// performs the MPE log wrap-up (clock sync, collection, merge, single
// CLOG-2 file — the termination cost measured in the paper), and ends the
// execution phase.
func (r *Runtime) StopMain(status int) error {
	loc := callerLoc(1)
	if err := r.requirePhase("PI_StopMain", loc, phaseRunning); err != nil {
		return err
	}
	if log := r.logger(0); log.Enabled() {
		var cb mpe.Cargo
		log.StateEndBytes(r.states["Compute"], cb.Str("status: ").Int(status).Bytes())
	}

	r.wgWork.Wait()

	if r.svcRank >= 0 && !r.world.Aborted() {
		_ = r.svcSend(svcMsgQuit, 0, nil)
	}

	var finishErr error
	if r.jlog {
		if r.world.Aborted() {
			if !r.cfg.RobustLog {
				// Faithful to the paper: "when MPI_Abort is called, there
				// is no way to avoid the loss of the MPE log."
				r.warnf("pilot: warning: MPE log lost because the program aborted")
			}
		} else {
			t0 := time.Now()
			finishErr = r.logger(0).FinishFile(r.cfg.JumpshotPath)
			r.wrapUp = time.Since(t0)
		}
	}
	r.wgAll.Wait()

	// Release the transport before any salvage: in a multi-process world
	// this reaps the rank processes (so their spill files are closed and
	// final) and is the natural join point when no log merge did it.
	if err := r.world.Shutdown(); err != nil && !r.world.Aborted() {
		r.warnf("pilot: warning: transport shutdown: %v", err)
	}

	if r.jlog && r.cfg.RobustLog && r.world.Aborted() {
		// The paper's future work: finalize the log in all cases, from
		// the per-rank spill files.
		if err := r.salvageLog(); err != nil {
			r.warnf("pilot: warning: could not salvage MPE log: %v", err)
		} else {
			r.warnf("pilot: MPE log salvaged from spill files -> %s", r.cfg.JumpshotPath)
		}
	}

	r.mu.Lock()
	r.phase = phaseStopped
	r.mu.Unlock()

	if rep := r.DeadlockReport(); rep != nil {
		return errorf("PI_StopMain", loc, "deadlock detected:\n%s", rep.String())
	}
	if r.world.Aborted() {
		code := r.world.AbortCode()
		if code == AbortCodeDeadlock {
			// Multi-process world: the report lives in the service rank's
			// process, which printed the diagnosis to its own stderr.
			return errorf("PI_StopMain", loc, "deadlock detected (abort code %d); diagnosis printed by the service process", code)
		}
		return errorf("PI_StopMain", loc, "program aborted with code %d", code)
	}
	if finishErr != nil {
		return errorf("PI_StopMain", loc, "writing Jumpshot log: %v", finishErr)
	}
	return nil
}

// salvageLog merges the spill fragments of an aborted run into the
// regular Jumpshot log path and removes the fragments on success. Any
// damage the salvage had to route around — lost segments, quarantined
// bytes, a synthesized defs table — is surfaced as warnings, because an
// abort is exactly when the user needs to know how trustworthy the
// recovered timeline is.
func (r *Runtime) salvageLog() error {
	out, err := os.Create(r.cfg.JumpshotPath)
	if err != nil {
		return err
	}
	rep, err := mpe.SalvageWithReport(r.cfg.JumpshotPath, out)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(r.cfg.JumpshotPath)
		return err
	}
	if rep.RanksRecovered == 0 {
		os.Remove(r.cfg.JumpshotPath)
		return fmt.Errorf("no records recovered from any rank fragment")
	}
	if !rep.Clean() {
		r.warnf("pilot: warning: salvage incomplete: %s", rep.Summary())
		for _, w := range rep.Warnings {
			r.warnf("pilot: warning: salvage: %s", w)
		}
	}
	mpe.RemoveSpills(r.cfg.JumpshotPath, r.cfg.NumProcs)
	return nil
}

// locCache memoises callerLoc results by program counter. A Pilot
// program calls the API from a fixed set of source lines, so after
// warm-up every call is a read-locked map hit returning a shared string
// — the runtime.FuncForPC walk and the "file.go:123" formatting happen
// once per call site instead of once per call.
var (
	locMu    sync.RWMutex
	locCache = map[uintptr]string{}
)

// callerLoc returns "file.go:123" for the caller skip+1 frames up.
func callerLoc(skip int) string {
	var pcs [1]uintptr
	// runtime.Callers(skip) counts itself at skip 0 where runtime.Caller
	// counts its caller, hence +2 to keep the old skip semantics.
	if runtime.Callers(skip+2, pcs[:]) == 0 {
		return ""
	}
	pc := pcs[0]
	locMu.RLock()
	loc, ok := locCache[pc]
	locMu.RUnlock()
	if ok {
		return loc
	}
	frame, _ := runtime.CallersFrames(pcs[:]).Next()
	file, line := frame.File, frame.Line
	// Trim the path to the base name, as Pilot reports "the line number
	// where it is called in the original .c file".
	for i := len(file) - 1; i >= 0; i-- {
		if file[i] == '/' {
			file = file[i+1:]
			break
		}
	}
	loc = file + ":" + strconv.Itoa(line)
	locMu.Lock()
	locCache[pc] = loc
	locMu.Unlock()
	return loc
}
