package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/slog2"
	"repro/vis"
)

// The paper's future work, end to end: with RobustLog on, a PI_Abort no
// longer loses the visual log — the spill fragments are salvaged into a
// CLOG-2 that converts and renders.
func TestRobustLogSurvivesAbort(t *testing.T) {
	cfg, errBuf := testConfig(t, 3, "j")
	cfg.RobustLog = true
	r := mustRuntime(t, cfg)
	var ch *Channel
	p, err := r.CreateProcess(func(self *Self, index int, arg any) int {
		var v int
		if err := ch.Read("%d", &v); err != nil {
			return 1
		}
		self.Abort(9, "fatal problem detected")
		return 1
	}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ch, err = r.CreateChannel(r.MainProc(), p); err != nil {
		t.Fatal(err)
	}
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	if err := ch.Write("%d", 1); err != nil {
		t.Fatal(err)
	}
	if err := r.StopMain(0); err == nil {
		t.Fatal("aborted run finished cleanly")
	}

	// The log exists despite the abort...
	f, rep, err := vis.ConvertFile(cfg.JumpshotPath, vis.ConvertOptions{})
	if err != nil {
		t.Fatalf("salvaged log unusable: %v", err)
	}
	// ...and contains the pre-abort activity: the write on main, the read
	// on the worker, and the message arrow between them.
	states, arrows, _ := f.All()
	haveWrite, haveRead := false, false
	for _, s := range states {
		switch f.Categories[s.Cat].Name {
		case "PI_Write":
			haveWrite = true
		case "PI_Read":
			haveRead = true
		}
	}
	if !haveWrite || !haveRead {
		t.Errorf("salvaged log missing states: write=%v read=%v", haveWrite, haveRead)
	}
	if len(arrows) != 1 {
		t.Errorf("salvaged arrows = %d, want 1", len(arrows))
	}
	_ = rep
	if !strings.Contains(errBuf.String(), "salvaged") {
		t.Errorf("no salvage notice: %q", errBuf.String())
	}
	// Open states at abort time are tolerated by the converter as nesting
	// warnings, not errors; the file itself passes invariants.
	if err := checkSlogInvariants(f); err != nil {
		t.Fatal(err)
	}
	// Spill fragments are cleaned up after a successful salvage.
	if _, err := os.Stat(cfg.JumpshotPath + ".rank0.spill"); !os.IsNotExist(err) {
		t.Error("spill fragment left behind after salvage")
	}
}

func checkSlogInvariants(f *vis.File) error {
	return (*slog2.File)(f).CheckInvariants()
}

// A clean RobustLog run behaves exactly like a normal run: merged log
// written, no spill files left.
func TestRobustLogCleanRun(t *testing.T) {
	cfg, _ := testConfig(t, 2, "j")
	cfg.RobustLog = true
	r := mustRuntime(t, cfg)
	done := make(chan struct{})
	if _, err := r.CreateProcess(func(self *Self, index int, arg any) int {
		defer close(done)
		self.Log("worker ran")
		return 0
	}, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	<-done
	if err := r.StopMain(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := vis.ConvertFile(cfg.JumpshotPath, vis.ConvertOptions{}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Dir(cfg.JumpshotPath))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".spill") {
			t.Errorf("spill file %s left after clean run", e.Name())
		}
	}
}

// Spilling costs a disk write per record; make sure it does not distort
// the in-memory log (same record counts with and without).
func TestRobustLogSameContent(t *testing.T) {
	run := func(robust bool) (states int) {
		cfg, _ := testConfig(t, 2, "j")
		cfg.RobustLog = robust
		r := mustRuntime(t, cfg)
		var ch *Channel
		p, _ := r.CreateProcess(func(self *Self, index int, arg any) int {
			var v int
			for i := 0; i < 5; i++ {
				if err := ch.Read("%d", &v); err != nil {
					return 1
				}
			}
			return 0
		}, 0, nil)
		ch, _ = r.CreateChannel(r.MainProc(), p)
		if _, err := r.StartAll(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := ch.Write("%d", i); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.StopMain(0); err != nil {
			t.Fatal(err)
		}
		f, _, err := vis.ConvertFile(cfg.JumpshotPath, vis.ConvertOptions{})
		if err != nil {
			t.Fatal(err)
		}
		s, _, _ := f.All()
		return len(s)
	}
	plain := run(false)
	robust := run(true)
	if plain != robust {
		t.Fatalf("state counts differ: plain=%d robust=%d", plain, robust)
	}
}
