package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/fmtspec"
	"repro/internal/mpe"
	"repro/internal/mpi"
)

// Channel is a one-way, typed, point-to-point conduit between two Pilot
// processes (PI_CHANNEL*). Channels are created during the configuration
// phase; the process at the `to` end calls Read, the `from` end calls
// Write. Every conversion spec in a format travels as its own wire
// message, exactly like Pilot over MPI ("a single PI_Read may involve
// multiple messages").
type Channel struct {
	r        *Runtime
	id       int // wire tag; 1-based
	from, to *Process

	nameMu sync.Mutex
	name   string

	bundle *Bundle // non-nil once claimed by a bundle
}

// ID returns the channel's identifier (also its MPI tag).
func (c *Channel) ID() int { return c.id }

// From returns the writing-end process.
func (c *Channel) From() *Process { return c.from }

// To returns the reading-end process.
func (c *Channel) To() *Process { return c.to }

// Name returns the display name (default "C<id>").
func (c *Channel) Name() string {
	c.nameMu.Lock()
	defer c.nameMu.Unlock()
	return c.name
}

// SetName assigns a meaningful display name (PI_SetName on a channel).
func (c *Channel) SetName(name string) {
	c.nameMu.Lock()
	c.name = name
	c.nameMu.Unlock()
}

// CreateChannel is PI_CreateChannel: a channel from `from` to `to`. Only
// legal in the configuration phase.
func (r *Runtime) CreateChannel(from, to *Process) (*Channel, error) {
	loc := callerLoc(1)
	if err := r.requirePhase("PI_CreateChannel", loc, phaseConfig); err != nil {
		return nil, err
	}
	if from == nil || to == nil {
		return nil, errorf("PI_CreateChannel", loc, "nil process endpoint")
	}
	if from.r != r || to.r != r {
		return nil, errorf("PI_CreateChannel", loc, "process belongs to a different Pilot runtime")
	}
	if from == to {
		return nil, errorf("PI_CreateChannel", loc, "channel endpoints must differ (%s to itself)", from.Name())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := &Channel{r: r, id: len(r.channels) + 1, from: from, to: to}
	c.name = fmt.Sprintf("C%d", c.id)
	r.channels = append(r.channels, c)
	return c, nil
}

// parseFormat parses with a per-runtime cache; formats are tiny but parsed
// on every call otherwise.
func (r *Runtime) parseFormat(op, loc, format string) ([]fmtspec.Spec, error) {
	if v, ok := r.formatCache.Load(format); ok {
		return v.([]fmtspec.Spec), nil
	}
	specs, err := fmtspec.Parse(format)
	if err != nil {
		return nil, errorf(op, loc, "%v", err)
	}
	r.formatCache.Store(format, specs)
	return specs, nil
}

// frameMessage prepends the canonical conversion spec to a payload. The
// header lets error-check level 2 verify "that reader and writer format
// strings match" without a separate exchange.
func frameMessage(spec string, payload []byte) []byte {
	msg := make([]byte, 2+len(spec)+len(payload))
	binary.LittleEndian.PutUint16(msg, uint16(len(spec)))
	copy(msg[2:], spec)
	copy(msg[2+len(spec):], payload)
	return msg
}

func parseFrame(b []byte) (spec string, payload []byte, err error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("short message frame (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, fmt.Errorf("message frame truncated")
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

// Write is PI_Write: encode each conversion of format from args and send
// it down the channel. Writing has "an interprocess synchronization effect
// — signalling to wake up a waiting reader — as well as a communication
// effect"; large payloads additionally rendezvous with the reader.
func (c *Channel) Write(format string, args ...any) error {
	return c.write("PI_Write", callerLoc(1), format, args)
}

func (c *Channel) write(op, loc, format string, args []any) error {
	r := c.r
	if err := r.requirePhase(op, loc, phaseRunning); err != nil {
		return err
	}
	specs, err := r.parseFormat(op, loc, format)
	if err != nil {
		return err
	}
	if r.cfg.CheckLevel >= 3 {
		if err := validateWriteArgs(specs, args); err != nil {
			return errorf(op, loc, "%v", err)
		}
	}
	log := r.logger(c.from.rank)
	if log.Enabled() {
		var cb mpe.Cargo
		log.StateStartBytes(r.states[op], cb.KV("line", loc).
			KV("proc", c.from.Name()).Str(" idx: ").Int(c.from.index).Bytes())
		defer log.StateEnd(r.states[op], "")
	}
	if r.nativeOn() {
		r.nativeLog(c.from.rank, fmt.Sprintf("%s %s chan %s fmt %q %s",
			c.from.Name(), op, c.Name(), format, loc))
	}

	i := 0
	for _, spec := range specs {
		payload, consumed, err := fmtspec.Encode(spec, args[i:])
		if err != nil {
			return errorf(op, loc, "%v", err)
		}
		i += consumed
		if err := c.sendOne(op, loc, spec, payload, log.Enabled()); err != nil {
			return err
		}
	}
	if i != len(args) {
		return errorf(op, loc, "format %q consumed %d arguments, %d supplied", format, i, len(args))
	}
	return nil
}

// sendOne ships one conversion's payload, with deadlock-detector
// notifications around the potentially blocking send and the MPE message
// record and output-side bubble ("the data length and the value of the
// first element are also shown").
func (c *Channel) sendOne(op, loc string, spec fmtspec.Spec, payload []byte, logOn bool) error {
	r := c.r
	msg := frameMessage(spec.String(), payload)
	log := r.logger(c.from.rank)
	if logOn {
		log.LogSend(c.to.rank, c.id, len(msg))
		var db [fmtspec.DescribeMax]byte
		var cb mpe.Cargo
		log.EventBytes(r.events["MsgDeparture"], cb.KV("chan", c.Name()).
			Str(" ").Raw(fmtspec.AppendDescribe(db[:0], spec, payload)).Bytes())
	}
	r.svcWait(c.from.rank, op, []int{c.to.rank}, false, loc)
	err := r.world.Rank(c.from.rank).Send(c.to.rank, c.id, msg)
	r.svcDone(c.from.rank)
	if err != nil {
		return errorf(op, loc, "send on %s: %v", c.Name(), err)
	}
	return nil
}

// Read is PI_Read: block until each conversion's message arrives and
// decode it into args. "Reading always blocks in Pilot"; the arrival of
// each wire message drops a bubble into the visual log marking the moment
// the message arrived, with the channel name in its popup.
func (c *Channel) Read(format string, args ...any) error {
	return c.read("PI_Read", callerLoc(1), format, args)
}

func (c *Channel) read(op, loc, format string, args []any) error {
	r := c.r
	if err := r.requirePhase(op, loc, phaseRunning); err != nil {
		return err
	}
	specs, err := r.parseFormat(op, loc, format)
	if err != nil {
		return err
	}
	if r.cfg.CheckLevel >= 3 {
		if err := validateReadArgs(specs, args); err != nil {
			return errorf(op, loc, "%v", err)
		}
	}
	log := r.logger(c.to.rank)
	if log.Enabled() {
		var cb mpe.Cargo
		log.StateStartBytes(r.states[op], cb.KV("line", loc).
			KV("proc", c.to.Name()).Str(" idx: ").Int(c.to.index).Bytes())
		defer log.StateEnd(r.states[op], "")
	}
	if r.nativeOn() {
		r.nativeLog(c.to.rank, fmt.Sprintf("%s %s chan %s fmt %q %s",
			c.to.Name(), op, c.Name(), format, loc))
	}

	i := 0
	for si, spec := range specs {
		m, err := c.recvOne(op, loc)
		if err != nil {
			return err
		}
		wireFmt, payload, err := parseFrame(m.Data)
		if err != nil {
			return errorf(op, loc, "on %s: %v", c.Name(), err)
		}
		if log.Enabled() {
			log.LogRecv(c.from.rank, c.id, len(m.Data))
			var cb mpe.Cargo
			log.EventBytes(r.events["MsgArrival"], cb.KV("chan", c.Name()).
				Str(" msg: ").Int(si+1).Str("/").Int(len(specs)).Bytes())
		}
		if r.cfg.CheckLevel >= 2 {
			if err := checkWireFormat(wireFmt, spec); err != nil {
				return errorf(op, loc, "on %s: %v", c.Name(), err)
			}
		}
		consumed, err := fmtspec.Decode(spec, payload, args[i:])
		if err != nil {
			return errorf(op, loc, "on %s: %v", c.Name(), err)
		}
		i += consumed
	}
	if i != len(args) {
		return errorf(op, loc, "format %q consumed %d arguments, %d supplied", format, i, len(args))
	}
	return nil
}

// recvOne receives one wire message, announcing the wait to the deadlock
// detector only when no data is already queued (so buffered traffic from
// an exited writer never looks like a deadlock).
func (c *Channel) recvOne(op, loc string) (mpi.Message, error) {
	r := c.r
	rank := r.world.Rank(c.to.rank)
	if r.detectorOn() {
		if _, ok, _ := rank.Iprobe(c.from.rank, c.id); !ok {
			r.svcWait(c.to.rank, op, []int{c.from.rank}, false, loc)
			m, err := rank.Recv(c.from.rank, c.id)
			r.svcDone(c.to.rank)
			if err != nil {
				return m, errorf(op, loc, "receive on %s: %v", c.Name(), err)
			}
			return m, nil
		}
	}
	m, err := rank.Recv(c.from.rank, c.id)
	if err != nil {
		return m, errorf(op, loc, "receive on %s: %v", c.Name(), err)
	}
	return m, nil
}

// checkWireFormat implements error-check level 2: the reader's spec must
// be compatible with what the writer actually sent.
func checkWireFormat(wireFmt string, readerSpec fmtspec.Spec) error {
	wspecs, err := fmtspec.Parse(wireFmt)
	if err != nil {
		return fmt.Errorf("undecodable wire format %q: %v", wireFmt, err)
	}
	return fmtspec.Compatible(wspecs, []fmtspec.Spec{readerSpec})
}

// HasData is PI_ChannelHasData: a non-blocking check whether a Read would
// find at least one message waiting. Logged as a bubble with the result in
// the popup.
func (c *Channel) HasData() (bool, error) {
	loc := callerLoc(1)
	r := c.r
	if err := r.requirePhase("PI_ChannelHasData", loc, phaseRunning); err != nil {
		return false, err
	}
	_, ok, err := r.world.Rank(c.to.rank).Iprobe(c.from.rank, c.id)
	if err != nil {
		return false, errorf("PI_ChannelHasData", loc, "%v", err)
	}
	if log := r.logger(c.to.rank); log.Enabled() {
		var cb mpe.Cargo
		log.EventBytes(r.events["PI_ChannelHasData"], cb.KV("chan", c.Name()).
			Str(" has: ").Bool(ok).KV("line", loc).Bytes())
	}
	if r.nativeOn() {
		r.nativeLog(c.to.rank, fmt.Sprintf("%s PI_ChannelHasData chan %s -> %v %s",
			c.to.Name(), c.Name(), ok, loc))
	}
	return ok, nil
}

// validateWriteArgs is error-check level 3 for the write side: every
// argument present and of the right type, verified before any message is
// sent so a bad call transmits nothing.
func validateWriteArgs(specs []fmtspec.Spec, args []any) error {
	i := 0
	for _, spec := range specs {
		if _, consumed, err := fmtspec.Encode(spec, args[i:]); err != nil {
			return err
		} else {
			i += consumed
		}
	}
	if i != len(args) {
		return fmt.Errorf("format consumed %d arguments, %d supplied", i, len(args))
	}
	return nil
}

// validateReadArgs is error-check level 3 for the read side: destinations
// must be pointers (or count+slice pairs) of the right types. Verified by
// decoding zero payloads where possible; the real decode still re-checks.
func validateReadArgs(specs []fmtspec.Spec, args []any) error {
	i := 0
	for _, spec := range specs {
		need := spec.ArgsRead()
		if len(args[i:]) < need {
			return fmt.Errorf("%s needs %d argument(s), %d left", spec, need, len(args[i:]))
		}
		i += need
	}
	if i != len(args) {
		return fmt.Errorf("format consumed %d arguments, %d supplied", i, len(args))
	}
	return nil
}

// arrowSpread sleeps between collective fan-out arrows — the paper's 1 ms
// usleep workaround for superimposed drawables. Applied only when the
// visual log is being recorded, since its sole purpose is drawable
// separation.
func (r *Runtime) arrowSpread() {
	if r.jlog && r.cfg.ArrowSpread > 0 {
		time.Sleep(r.cfg.ArrowSpread)
	}
}
