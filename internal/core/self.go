package core

import "fmt"

// Self is the process-context handle passed to every work function (and
// returned for PI_MAIN by StartAll). It carries the operations whose
// meaning depends on which process is calling: PI_Log, PI_StartTime,
// PI_EndTime, PI_Abort, PI_IsLogging and naming.
type Self struct {
	r    *Runtime
	proc *Process
}

// Rank returns the caller's MPI rank.
func (s *Self) Rank() int { return s.proc.rank }

// Process returns the caller's process handle.
func (s *Self) Process() *Process { return s.proc }

// Name returns the caller's display name.
func (s *Self) Name() string { return s.proc.Name() }

// SetName assigns the caller's display name (PI_SetName).
func (s *Self) SetName(name string) { s.proc.SetName(name) }

// IsLogging reports whether the given service is active (PI_IsLogging):
// pass SvcJumpshot, SvcNativeLog or SvcDeadlock.
func (s *Self) IsLogging(service rune) bool {
	if service == SvcJumpshot {
		return s.r.jlog
	}
	return s.r.cfg.HasService(service)
}

// Log is PI_Log: an arbitrary text entry in whichever logs are active —
// a bubble in the visual log, a line in the native log.
func (s *Self) Log(text string) error {
	loc := callerLoc(1)
	s.r.logger(s.proc.rank).Event(s.r.events["PI_Log"], truncTo(fmt.Sprintf("line: %s %s", loc, text), 40))
	s.r.nativeLog(s.proc.rank, fmt.Sprintf("%s PI_Log %q %s", s.proc.Name(), text, loc))
	return nil
}

// StartTime is PI_StartTime: it returns the caller's wallclock in seconds
// and drops a bubble in the visual log.
func (s *Self) StartTime() float64 {
	loc := callerLoc(1)
	t := s.r.world.Rank(s.proc.rank).Wtime()
	s.r.logger(s.proc.rank).Event(s.r.events["PI_StartTime"], truncTo(fmt.Sprintf("t: %.6f line: %s", t, loc), 40))
	return t
}

// EndTime is PI_EndTime: identical to StartTime but logged distinctly so
// the pair brackets a user-timed region in the display.
func (s *Self) EndTime() float64 {
	loc := callerLoc(1)
	t := s.r.world.Rank(s.proc.rank).Wtime()
	s.r.logger(s.proc.rank).Event(s.r.events["PI_EndTime"], truncTo(fmt.Sprintf("t: %.6f line: %s", t, loc), 40))
	return t
}

// Abort is PI_Abort: print a diagnostic pinpointing the call site and
// bring down every rank via MPI_Abort. As the paper documents, this loses
// any MPE log, while the native log survives because it streams to disk.
func (s *Self) Abort(code int, msg string) {
	loc := callerLoc(1)
	s.r.warnf("pilot: PI_Abort at %s by %s (rank %d), code %d: %s",
		loc, s.proc.Name(), s.proc.rank, code, msg)
	s.r.nativeLog(s.proc.rank, fmt.Sprintf("%s PI_Abort code=%d %q %s", s.proc.Name(), code, msg, loc))
	s.r.world.Rank(s.proc.rank).Abort(code)
}

func truncTo(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
