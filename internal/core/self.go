package core

import (
	"fmt"

	"repro/internal/mpe"
)

// Self is the process-context handle passed to every work function (and
// returned for PI_MAIN by StartAll). It carries the operations whose
// meaning depends on which process is calling: PI_Log, PI_StartTime,
// PI_EndTime, PI_Abort, PI_IsLogging and naming.
type Self struct {
	r    *Runtime
	proc *Process
}

// Rank returns the caller's MPI rank.
func (s *Self) Rank() int { return s.proc.rank }

// Process returns the caller's process handle.
func (s *Self) Process() *Process { return s.proc }

// Name returns the caller's display name.
func (s *Self) Name() string { return s.proc.Name() }

// SetName assigns the caller's display name (PI_SetName).
func (s *Self) SetName(name string) { s.proc.SetName(name) }

// IsLogging reports whether the given service is active (PI_IsLogging):
// pass SvcJumpshot, SvcNativeLog or SvcDeadlock.
func (s *Self) IsLogging(service rune) bool {
	if service == SvcJumpshot {
		return s.r.jlog
	}
	return s.r.cfg.HasService(service)
}

// Log is PI_Log: an arbitrary text entry in whichever logs are active —
// a bubble in the visual log, a line in the native log. With neither log
// active the call does no formatting work at all.
func (s *Self) Log(text string) error {
	log := s.r.logger(s.proc.rank)
	natOn := s.r.nativeOn()
	if !log.Enabled() && !natOn {
		return nil
	}
	loc := callerLoc(1)
	if log.Enabled() {
		var cb mpe.Cargo
		log.EventBytes(s.r.events["PI_Log"], cb.KV("line", loc).Str(" ").Str(text).Bytes())
	}
	if natOn {
		s.r.nativeLog(s.proc.rank, fmt.Sprintf("%s PI_Log %q %s", s.proc.Name(), text, loc))
	}
	return nil
}

// StartTime is PI_StartTime: it returns the caller's wallclock in seconds
// and drops a bubble in the visual log.
func (s *Self) StartTime() float64 {
	t := s.r.world.Rank(s.proc.rank).Wtime()
	if log := s.r.logger(s.proc.rank); log.Enabled() {
		var cb mpe.Cargo
		log.EventBytes(s.r.events["PI_StartTime"],
			cb.Str("t: ").Float(t, 6).KV("line", callerLoc(1)).Bytes())
	}
	return t
}

// EndTime is PI_EndTime: identical to StartTime but logged distinctly so
// the pair brackets a user-timed region in the display.
func (s *Self) EndTime() float64 {
	t := s.r.world.Rank(s.proc.rank).Wtime()
	if log := s.r.logger(s.proc.rank); log.Enabled() {
		var cb mpe.Cargo
		log.EventBytes(s.r.events["PI_EndTime"],
			cb.Str("t: ").Float(t, 6).KV("line", callerLoc(1)).Bytes())
	}
	return t
}

// Abort is PI_Abort: print a diagnostic pinpointing the call site and
// bring down every rank via MPI_Abort. As the paper documents, this loses
// any MPE log, while the native log survives because it streams to disk.
func (s *Self) Abort(code int, msg string) {
	loc := callerLoc(1)
	s.r.warnf("pilot: PI_Abort at %s by %s (rank %d), code %d: %s",
		loc, s.proc.Name(), s.proc.rank, code, msg)
	if s.r.nativeOn() {
		s.r.nativeLog(s.proc.rank, fmt.Sprintf("%s PI_Abort code=%d %q %s", s.proc.Name(), code, msg, loc))
	}
	s.r.world.Rank(s.proc.rank).Abort(code)
}
