package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/vis"
)

// crashRing builds main -> w1 -> main token passing where w1's crash
// strands PI_MAIN reading from the dead rank. It runs off the test
// goroutine, so setup failures are returned, not fataled.
func crashRing(cfg Config) error {
	r, err := NewRuntime(cfg)
	if err != nil {
		return err
	}
	var toW, fromW *Channel
	p, err := r.CreateProcess(func(self *Self, index int, arg any) int {
		for {
			var v int
			if err := toW.Read("%d", &v); err != nil {
				return 1
			}
			if err := fromW.Write("%d", v+1); err != nil {
				return 1
			}
		}
	}, 0, nil)
	if err != nil {
		return err
	}
	if toW, err = r.CreateChannel(r.MainProc(), p); err != nil {
		return err
	}
	if fromW, err = r.CreateChannel(p, r.MainProc()); err != nil {
		return err
	}
	if _, err := r.StartAll(); err != nil {
		return err
	}
	for i := 0; i < 10; i++ {
		if err := toW.Write("%d", i); err != nil {
			break
		}
		var v int
		if err := fromW.Read("%d", &v); err != nil {
			break
		}
	}
	return r.StopMain(0)
}

// An injected crash with the detector on must end in a diagnosed
// deadlock, never a silent hang: the crashed rank drops out, PI_MAIN
// blocks reading from it, and the detector names the stranded process.
func TestInjectedCrashDiagnosedByDetector(t *testing.T) {
	cfg, errBuf := testConfig(t, 3, "d")
	cfg.DeadlockGrace = 30 * time.Millisecond
	cfg.Faults = &mpi.FaultPlan{Seed: 5, Rules: []mpi.FaultRule{{Kind: mpi.FaultCrash, Rank: 1, Op: 4}}}
	done := make(chan error, 1)
	go func() { done <- crashRing(cfg) }()
	var err error
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("undiagnosed hang: crash with detector on never terminated")
	}
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("StopMain: %v, want deadlock diagnosis", err)
	}
	if !strings.Contains(errBuf.String(), "DEADLOCK") {
		t.Errorf("no deadlock diagnostic on stderr: %q", errBuf.String())
	}
}

// Without the detector, CrashAuto resolves to whole-world teardown: the
// run ends in a clean ErrAborted unwind with the fault abort code.
func TestInjectedCrashWithoutDetectorAborts(t *testing.T) {
	cfg, _ := testConfig(t, 2, "")
	cfg.Faults = &mpi.FaultPlan{Seed: 5, Rules: []mpi.FaultRule{{Kind: mpi.FaultCrash, Rank: 1, Op: 4}}}
	done := make(chan error, 1)
	go func() { done <- crashRing(cfg) }()
	var err error
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("undiagnosed hang: crash without detector never terminated")
	}
	if err == nil || !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("StopMain: %v, want abort", err)
	}
	if !strings.Contains(err.Error(), "137") {
		t.Fatalf("StopMain: %v, want fault abort code 137", err)
	}
}

// Injected faults must be visible in the converted timeline: orange
// FaultInjected solo events, one per fired fault.
func TestFaultEventsVisibleInTimeline(t *testing.T) {
	cfg, _ := testConfig(t, 2, "j")
	cfg.Faults = &mpi.FaultPlan{Seed: 11, Rules: []mpi.FaultRule{
		{Kind: mpi.FaultStall, Rank: 1, Op: 2, Delay: time.Millisecond},
		{Kind: mpi.FaultDelay, Rank: 0, Op: 3, Delay: time.Millisecond},
	}}
	r := mustRuntime(t, cfg)
	var toW, fromW *Channel
	p, err := r.CreateProcess(func(self *Self, index int, arg any) int {
		for i := 0; i < 4; i++ {
			var v int
			if err := toW.Read("%d", &v); err != nil {
				return 1
			}
			if err := fromW.Write("%d", v+1); err != nil {
				return 1
			}
		}
		return 0
	}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if toW, err = r.CreateChannel(r.MainProc(), p); err != nil {
		t.Fatal(err)
	}
	if fromW, err = r.CreateChannel(p, r.MainProc()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.StartAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := toW.Write("%d", i); err != nil {
			t.Fatal(err)
		}
		var v int
		if err := fromW.Read("%d", &v); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.StopMain(0); err != nil {
		t.Fatal(err)
	}
	injected := r.World().FaultEvents()
	if len(injected) != 2 {
		t.Fatalf("injected %d faults, want 2: %v", len(injected), injected)
	}

	f, _, err := vis.ConvertFile(cfg.JumpshotPath, vis.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cat := f.CategoryIndex("FaultInjected")
	if cat < 0 {
		t.Fatal("converted log has no FaultInjected category")
	}
	if got := f.Categories[cat].Color; got != "orange" {
		t.Errorf("FaultInjected colour = %q, want orange", got)
	}
	_, _, events := f.All()
	var bubbles []string
	for _, e := range events {
		if e.Cat == cat {
			bubbles = append(bubbles, e.Cargo)
		}
	}
	if len(bubbles) != len(injected) {
		t.Fatalf("timeline shows %d fault bubbles (%v), want %d", len(bubbles), bubbles, len(injected))
	}
	for i, ev := range injected {
		want := ev.String()
		found := false
		for _, b := range bubbles {
			if strings.HasPrefix(want, strings.TrimRight(b, "\x00")) || strings.HasPrefix(b, want) || b == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fault %d (%s) has no matching bubble in %v", i, want, bubbles)
		}
	}
}

// With RobustLog, the deadlock report itself survives the abort as a
// magenta solo event on the service timeline of the salvaged log.
func TestDeadlockReportEventSalvaged(t *testing.T) {
	cfg, _ := testConfig(t, 3, "dj")
	cfg.RobustLog = true
	cfg.DeadlockGrace = 30 * time.Millisecond
	cfg.Faults = &mpi.FaultPlan{Seed: 5, Rules: []mpi.FaultRule{{Kind: mpi.FaultCrash, Rank: 1, Op: 4}}}
	done := make(chan error, 1)
	go func() { done <- crashRing(cfg) }()
	var err error
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("undiagnosed hang")
	}
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("StopMain: %v, want deadlock diagnosis", err)
	}
	f, _, err := vis.ConvertFile(cfg.JumpshotPath, vis.ConvertOptions{})
	if err != nil {
		t.Fatalf("salvaged log unusable: %v", err)
	}
	cat := f.CategoryIndex("Deadlock")
	if cat < 0 {
		t.Fatal("salvaged log has no Deadlock category")
	}
	if got := f.Categories[cat].Color; got != "magenta" {
		t.Errorf("Deadlock colour = %q, want magenta", got)
	}
	_, _, events := f.All()
	n := 0
	for _, e := range events {
		if e.Cat == cat {
			n++
		}
	}
	if n != 1 {
		t.Errorf("salvaged log has %d Deadlock events, want 1", n)
	}
	if fc := f.CategoryIndex("FaultInjected"); fc < 0 {
		t.Error("salvaged log lost the FaultInjected category")
	}
}
