// The kill/corrupt chaos harness for the v2 spill format: a real example
// program runs under RobustLog in a subprocess, is SIGKILLed at a seeded
// point mid-run, its spill fragments are (optionally, seeded) further
// damaged — bytes flipped, tails truncated, the defs table deleted — and
// the salvage pipeline must still produce a CLOG-2 that converts to a
// valid SLOG-2, with a report whose segment accounting closes exactly.
// Every seed is independent and replayable: the corruption is a pure
// function of the seed, and the assertions are invariants that hold for
// any kill point.
package repro_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/clog2"
	"repro/internal/collisions"
	"repro/internal/core"
	"repro/internal/mpe"
	"repro/internal/slog2"
	"repro/vis"
)

const (
	chaosChildEnv  = "PILOT_CHAOS_CHILD"
	chaosPrefixEnv = "PILOT_CHAOS_PREFIX"
)

// TestChaosKillChildProcess is the subprocess body, inert unless the
// harness env vars are set. It loops the collisions example under
// RobustLog forever; the parent SIGKILLs it mid-run. The per-row sleep
// stretches each iteration so the kill lands inside the logging steady
// state, not the setup.
func TestChaosKillChildProcess(t *testing.T) {
	if os.Getenv(chaosChildEnv) != "1" {
		t.Skip("chaos child body; run via TestChaosKillSalvage")
	}
	prefix := os.Getenv(chaosPrefixEnv)
	for {
		_, _ = collisions.RunFixed(collisions.Config{
			Workers:          3,
			Rows:             600,
			ReadSleepPerRow:  200 * time.Microsecond,
			QuerySleepPerRow: 50 * time.Microsecond,
			Core: core.Config{
				Services:     string(core.SvcJumpshot),
				RobustLog:    true,
				JumpshotPath: prefix,
			},
		})
	}
}

// spillBytes totals the on-disk size of every rank fragment.
func spillBytes(prefix string) int64 {
	var total int64
	for _, frag := range mpe.FindSpillFragments(prefix) {
		if fi, err := os.Stat(frag.Path); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// corruptSpills applies seeded damage to the fragments a kill left
// behind: per fragment, maybe flip a few bytes or truncate the tail;
// maybe delete or scribble over the defs table. Everything is driven by
// rng, so a seed replays its exact damage.
func corruptSpills(t *testing.T, prefix string, rng *rand.Rand) (flips, truncs int, defsGone bool) {
	t.Helper()
	for _, frag := range mpe.FindSpillFragments(prefix) {
		data, err := os.ReadFile(frag.Path)
		if err != nil || len(data) == 0 {
			continue
		}
		switch {
		case rng.Intn(100) < 40: // flip 1..3 bytes
			n := 1 + rng.Intn(3)
			for i := 0; i < n; i++ {
				data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
			}
			flips += n
		case rng.Intn(100) < 30: // tear the tail off
			data = data[:rng.Intn(len(data))]
			truncs++
		}
		if err := os.WriteFile(frag.Path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	switch defs := prefix + ".defs.spill"; rng.Intn(100) {
	case 0, 1, 2, 3, 4, 5, 6, 7, 8, 9: // delete outright
		os.Remove(defs)
		defsGone = true
	case 10, 11, 12, 13, 14: // scribble over
		if err := os.WriteFile(defs, []byte("defs table roadkill"), 0o644); err != nil {
			t.Fatal(err)
		}
		defsGone = true
	}
	return flips, truncs, defsGone
}

// chaosKillOnce runs one seed: spawn, kill at a seeded spill size,
// corrupt, salvage, convert, and check the invariants.
func chaosKillOnce(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	prefix := filepath.Join(dir, "chaos.clog2")

	cmd := exec.Command(os.Args[0], "-test.run=^TestChaosKillChildProcess$")
	cmd.Env = append(os.Environ(), chaosChildEnv+"=1", chaosPrefixEnv+"="+prefix)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Kill once the fragments pass a seeded size — far enough in that
	// segments exist, early enough that the run is mid-flight. The extra
	// microsleep jitters the kill across segment boundaries and mid-write
	// points.
	threshold := int64(800 + rng.Intn(4000))
	deadline := time.Now().Add(60 * time.Second)
	for spillBytes(prefix) < threshold {
		if time.Now().After(deadline) {
			t.Fatalf("seed %d: child produced %d spill bytes in 60s, want %d",
				seed, spillBytes(prefix), threshold)
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(time.Duration(rng.Intn(3000)) * time.Microsecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	flips, truncs, defsGone := corruptSpills(t, prefix, rng)

	var out bytes.Buffer
	rep, err := mpe.SalvageWithReport(prefix, &out)
	if err != nil {
		t.Fatalf("seed %d (flips=%d truncs=%d defsGone=%v): salvage errored: %v",
			seed, flips, truncs, defsGone, err)
	}

	// The report's segment accounting must close for every v2 rank:
	// recovered + skipped + missing == written.
	var recovered int
	for _, r := range rep.Ranks {
		if r.Format == clog2.SpillFormatV2 &&
			int64(r.SegmentsRecovered+r.SegmentsSkipped+r.SegmentsMissing) != r.SegmentsWritten {
			t.Fatalf("seed %d: rank %d accounting open: %+v\n%s", seed, r.Rank, r, rep)
		}
		recovered += r.SegmentsRecovered
	}
	if recovered == 0 {
		t.Fatalf("seed %d: no segments recovered from %d fragments past %d bytes\n%s",
			seed, len(rep.Ranks), threshold, rep)
	}
	if defsGone && !rep.DefsSynthesized {
		// Damaging the defs table may still leave its one segment intact
		// (truncation past it), but outright deletion/scribbling may not.
		t.Fatalf("seed %d: defs destroyed yet not synthesized\n%s", seed, rep)
	}

	// The salvaged CLOG-2 must parse and convert to a writable SLOG-2 —
	// the end of the paper's pipeline.
	salvaged := filepath.Join(dir, "salvaged.clog2")
	if err := os.WriteFile(salvaged, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	sf, _, err := vis.ConvertFile(salvaged, vis.ConvertOptions{})
	if err != nil {
		t.Fatalf("seed %d: salvaged log does not convert: %v\n%s", seed, err, rep)
	}
	var slogOut bytes.Buffer
	if err := slog2.Write(&slogOut, sf); err != nil {
		t.Fatalf("seed %d: converted SLOG-2 does not serialize: %v", seed, err)
	}
	if slogOut.Len() == 0 {
		t.Fatalf("seed %d: empty SLOG-2", seed)
	}
}

// TestChaosKillSalvage sweeps the seeds. Each seed is a subtest so a
// failure names its seed for replay with -run.
func TestChaosKillSalvage(t *testing.T) {
	if os.Getenv(chaosChildEnv) == "1" {
		t.Skip("child process")
	}
	if testing.Short() {
		t.Skip("subprocess chaos sweep; skipped in -short")
	}
	const seeds = 24
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			chaosKillOnce(t, seed)
		})
	}
}
