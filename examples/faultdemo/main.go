// Fault-injection demo: the same tiny ring program run twice under a
// deterministic mpi.FaultPlan.
//
// Run 1 plants message delays and a mid-run stall, with MPE logging on
// (-pisvc=j): the injected faults show up as orange "FaultInjected"
// bubbles in the converted SLOG-2 timeline, something you can point at
// in the visual log.
//
// Run 2 crashes one worker at its 3rd operation, with the deadlock
// detector on (-pisvc=d): the crashed rank drops out, its peers block on
// it, and the detector diagnoses them instead of letting the program
// hang. Both runs replay identically from the same seed.
//
//	go run ./examples/faultdemo
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/mpi"
	"repro/pilot"
	"repro/vis"
)

// ring wires main -> w0 -> w1 -> main and pushes rounds tokens through.
func ring(cfg pilot.Config, rounds int) (*pilot.Runtime, error) {
	pi, err := pilot.Configure(cfg)
	if err != nil {
		return nil, err
	}
	var toW0, w0ToW1, w1ToMain *pilot.Channel
	w0, err := pi.CreateProcess(func(self *pilot.Self, index int, arg any) int {
		for i := 0; i < rounds; i++ {
			var v int
			if err := toW0.Read("%d", &v); err != nil {
				return 1
			}
			if err := w0ToW1.Write("%d", v+1); err != nil {
				return 1
			}
		}
		return 0
	}, 0, nil)
	if err != nil {
		return nil, err
	}
	w1, err := pi.CreateProcess(func(self *pilot.Self, index int, arg any) int {
		for i := 0; i < rounds; i++ {
			var v int
			if err := w0ToW1.Read("%d", &v); err != nil {
				return 1
			}
			if err := w1ToMain.Write("%d", v+1); err != nil {
				return 1
			}
		}
		return 0
	}, 1, nil)
	if err != nil {
		return nil, err
	}
	if toW0, err = pi.CreateChannel(pi.MainProc(), w0); err != nil {
		return nil, err
	}
	if w0ToW1, err = pi.CreateChannel(w0, w1); err != nil {
		return nil, err
	}
	if w1ToMain, err = pi.CreateChannel(w1, pi.MainProc()); err != nil {
		return nil, err
	}
	if _, err := pi.StartAll(); err != nil {
		return nil, err
	}
	for i := 0; i < rounds; i++ {
		if err := toW0.Write("%d", i); err != nil {
			break
		}
		var v int
		if err := w1ToMain.Read("%d", &v); err != nil {
			break
		}
	}
	return pi, nil
}

func main() {
	outDir := "out"
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	// Run 1: delays and a stall, visible in the timeline.
	plan, err := mpi.ParseFaultPlan("seed=7;delay:prob=0.3,dur=2ms;stall:rank=1,op=5,dur=3ms")
	if err != nil {
		log.Fatal(err)
	}
	clog := filepath.Join(outDir, "faultdemo.clog2")
	cfg := pilot.Config{
		NumProcs:     3, // main + two ring workers
		Services:     "j",
		CheckLevel:   3,
		JumpshotPath: clog,
		Faults:       plan,
	}
	pi, err := ring(cfg, 8)
	if err != nil {
		log.Fatal(err)
	}
	if err := pi.StopMain(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected %d faults:\n", len(pi.World().FaultEvents()))
	for _, ev := range pi.World().FaultEvents() {
		fmt.Println("  " + ev.String())
	}
	svg := filepath.Join(outDir, "faultdemo.svg")
	if _, _, err := vis.Pipeline(clog, filepath.Join(outDir, "faultdemo.slog2"), svg,
		vis.ConvertOptions{}, vis.View{Title: "fault injection demo"}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("timeline with orange FaultInjected bubbles -> %s\n\n", svg)

	// Run 2: crash worker rank 2 at its 3rd operation; the detector
	// diagnoses the stranded peers instead of hanging.
	plan2, err := mpi.ParseFaultPlan("seed=7;crash:rank=2,op=3")
	if err != nil {
		log.Fatal(err)
	}
	cfg2 := pilot.Config{
		NumProcs:   4, // main + two ring workers + the detector's service process
		Services:   "d",
		CheckLevel: 3,
		Faults:     plan2,
	}
	pi2, err := ring(cfg2, 8)
	if err != nil {
		log.Fatal(err)
	}
	err = pi2.StopMain(0)
	if err == nil {
		fmt.Println("unexpected: the crash went undiagnosed")
		return
	}
	fmt.Println("the crash was diagnosed:")
	fmt.Println(err)
	if rep := pi2.DeadlockReport(); rep != nil {
		fmt.Printf("stranded processes: %v\n", rep.Procs)
	}
}
