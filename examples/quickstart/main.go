// Quickstart: the smallest possible Pilot program — one worker, one
// channel each way, a greeting exchanged, and a visual log written so you
// can see the exchange in Jumpshot form:
//
//	go run ./examples/quickstart
//	go run ./cmd/jumpshot -ascii -legend quickstart.clog2
package main

import (
	"fmt"
	"log"
	"os"

	"repro/pilot"
)

func main() {
	// PI_Configure: 2 processes (PI_MAIN + 1 worker), Jumpshot logging on.
	cfg := pilot.Config{
		NumProcs:     2,
		Services:     "j",
		CheckLevel:   3,
		JumpshotPath: "quickstart.clog2",
	}
	pi, err := pilot.Configure(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Configuration phase: one worker and a channel in each direction.
	var toWorker, fromWorker *pilot.Channel
	worker, err := pi.CreateProcess(func(self *pilot.Self, index int, arg any) int {
		var name string
		if err := toWorker.Read("%s", &name); err != nil {
			return 1
		}
		if err := fromWorker.Write("%s", "hello, "+name+"!"); err != nil {
			return 1
		}
		return 0
	}, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	if toWorker, err = pi.CreateChannel(pi.MainProc(), worker); err != nil {
		log.Fatal(err)
	}
	if fromWorker, err = pi.CreateChannel(worker, pi.MainProc()); err != nil {
		log.Fatal(err)
	}

	// Execution phase: the worker runs; this goroutine continues as
	// PI_MAIN.
	if _, err := pi.StartAll(); err != nil {
		log.Fatal(err)
	}
	if err := toWorker.Write("%s", "Pilot"); err != nil {
		log.Fatal(err)
	}
	var reply string
	if err := fromWorker.Read("%s", &reply); err != nil {
		log.Fatal(err)
	}
	if err := pi.StopMain(0); err != nil {
		log.Fatal(err)
	}

	fmt.Println(reply)
	fmt.Println("visual log written to quickstart.clog2 — view it with:")
	fmt.Println("  go run ./cmd/jumpshot -ascii -legend quickstart.clog2")
	os.Exit(0)
}
