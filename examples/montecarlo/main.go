// Monte Carlo π: a reduce-flavoured Pilot program. PI_MAIN broadcasts the
// sample count, every worker throws darts at the unit square, and a
// PI_Reduce bundle sums the hit counts — the one-call collective answer to
// "merge the results".
//
//	go run ./examples/montecarlo -w 4 -n 200000 -pisvc=j
//	go run ./cmd/jumpshot -ascii -legend pi.clog2
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/pilot"
)

func main() {
	cfg := pilot.Config{CheckLevel: 3, JumpshotPath: "pi.clog2"}
	rest, err := pilot.ParseArgs(&cfg, os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	fs := flag.NewFlagSet("montecarlo", flag.ExitOnError)
	w := fs.Int("w", 4, "number of workers")
	n := fs.Int("n", 200000, "samples per worker")
	if err := fs.Parse(rest); err != nil {
		log.Fatal(err)
	}
	if cfg.NumProcs == 0 {
		cfg.NumProcs = *w + 1
		if cfg.HasService(pilot.SvcNativeLog) || cfg.HasService(pilot.SvcDeadlock) {
			cfg.NumProcs++
		}
	}
	pi, err := pilot.Configure(cfg)
	if err != nil {
		log.Fatal(err)
	}

	samplesCh := make([]*pilot.Channel, *w)
	hitsCh := make([]*pilot.Channel, *w)
	worker := func(self *pilot.Self, index int, arg any) int {
		var samples int
		if err := samplesCh[index].Read("%d", &samples); err != nil {
			return 1
		}
		rng := rand.New(rand.NewSource(int64(index) + 1))
		hits := 0
		for i := 0; i < samples; i++ {
			x, y := rng.Float64(), rng.Float64()
			if x*x+y*y <= 1 {
				hits++
			}
		}
		// The reduce endpoint combines these with PI_SUM.
		if err := hitsCh[index].Write("%d %d", hits, samples); err != nil {
			return 1
		}
		return 0
	}

	for i := 0; i < *w; i++ {
		p, err := pi.CreateProcess(worker, i, nil)
		if err != nil {
			log.Fatal(err)
		}
		if samplesCh[i], err = pi.CreateChannel(pi.MainProc(), p); err != nil {
			log.Fatal(err)
		}
		if hitsCh[i], err = pi.CreateChannel(p, pi.MainProc()); err != nil {
			log.Fatal(err)
		}
	}
	bcast, err := pi.CreateBundle(pilot.Broadcast, samplesCh...)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := pi.CreateBundle(pilot.Reduce, hitsCh...)
	if err != nil {
		log.Fatal(err)
	}

	if _, err := pi.StartAll(); err != nil {
		log.Fatal(err)
	}
	if err := bcast.Broadcast("%d", *n); err != nil {
		log.Fatal(err)
	}
	var hits, samples int
	if err := sum.Reduce(pilot.Sum, "%d %d", &hits, &samples); err != nil {
		log.Fatal(err)
	}
	if err := pi.StopMain(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pi ~= %.6f from %d samples across %d workers\n",
		4*float64(hits)/float64(samples), samples, *w)
}
