// Master/worker: the paper's Fig. 3 teaching exercise ("lab 2") written
// against the public API — PI_MAIN splits an array across W workers, each
// worker sums its share and reports back. Run with the visual log and
// compare the timeline to Fig. 3 of the paper:
//
//	go run ./examples/masterworker -w 5 -pisvc=j
//	go run ./cmd/jumpshot -ascii -legend lab2.clog2
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/pilot"
)

func main() {
	cfg := pilot.Config{CheckLevel: 3, JumpshotPath: "lab2.clog2"}
	rest, err := pilot.ParseArgs(&cfg, os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	fs := flag.NewFlagSet("masterworker", flag.ExitOnError)
	w := fs.Int("w", 5, "number of workers")
	num := fs.Int("num", 10000, "array size")
	if err := fs.Parse(rest); err != nil {
		log.Fatal(err)
	}
	if cfg.NumProcs == 0 {
		cfg.NumProcs = *w + 1
	}

	pi, err := pilot.Configure(cfg)
	if err != nil {
		log.Fatal(err)
	}

	toWorker := make([]*pilot.Channel, *w)
	result := make([]*pilot.Channel, *w)

	// The work function from the paper's Fig. 3: read the share size, read
	// the data, sum, report.
	workerFunc := func(self *pilot.Self, index int, arg any) int {
		var myshare int
		if err := toWorker[index].Read("%d", &myshare); err != nil {
			return 1
		}
		buff := make([]int, myshare)
		if err := toWorker[index].Read("%*d", myshare, buff); err != nil {
			return 1
		}
		sum := 0
		for _, v := range buff {
			sum += v
		}
		if err := result[index].Write("%d", sum); err != nil {
			return 1
		}
		return 0
	}

	for i := 0; i < *w; i++ {
		p, err := pi.CreateProcess(workerFunc, i, nil)
		if err != nil {
			log.Fatal(err)
		}
		if toWorker[i], err = pi.CreateChannel(pi.MainProc(), p); err != nil {
			log.Fatal(err)
		}
		if result[i], err = pi.CreateChannel(p, pi.MainProc()); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := pi.StartAll(); err != nil {
		log.Fatal(err)
	}

	// Fill the numbers array with random values.
	rng := rand.New(rand.NewSource(1))
	numbers := make([]int, *num)
	for i := range numbers {
		numbers[i] = rng.Intn(1000)
	}

	for i := 0; i < *w; i++ {
		portion := *num / *w
		if i == *w-1 {
			portion += *num % *w
		}
		if err := toWorker[i].Write("%d", portion); err != nil {
			log.Fatal(err)
		}
		if err := toWorker[i].Write("%*d", portion, numbers[i*(*num / *w):]); err != nil {
			log.Fatal(err)
		}
	}

	total := 0
	for i := 0; i < *w; i++ {
		var sum int
		if err := result[i].Read("%d", &sum); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Worker #%d reports sum = %d\n", i, sum)
		total += sum
	}
	if err := pi.StopMain(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Grand total = %d\n", total)

	// With -pistats the runtime carries a live metrics collector; print
	// the run's traffic totals the way a monitoring endpoint would see
	// them (pilot-bench -metrics-addr serves the same snapshot over HTTP).
	if m := pi.Metrics(); m != nil {
		snap := m.Snapshot()
		fmt.Printf("stats: %d msgs / %d bytes sent across %d channel(s)\n",
			snap.Totals["msgs_sent"], snap.Totals["bytes_sent"], len(snap.Channels))
	}
}
