// Pipeline: a three-stage flow using collectives and PI_Select — the
// shape of the paper's thumbnail application in miniature. PI_MAIN
// broadcasts a scale factor, scatters an array across stage-1 workers,
// each worker transforms its portion and writes to a shared stage-2
// combiner that uses PI_Select to take results as they become ready, and
// the combiner reduces everything back to PI_MAIN.
//
//	go run ./examples/pipeline -pisvc=j
//	go run ./cmd/jumpshot -ascii pipeline.clog2
package main

import (
	"fmt"
	"log"
	"os"

	"repro/pilot"
)

const (
	workers = 4
	perW    = 8 // elements per worker
)

func main() {
	cfg := pilot.Config{CheckLevel: 3, JumpshotPath: "pipeline.clog2"}
	rest, err := pilot.ParseArgs(&cfg, os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	_ = rest
	if cfg.NumProcs == 0 {
		cfg.NumProcs = workers + 2 // main + workers + combiner
		if cfg.HasService(pilot.SvcNativeLog) || cfg.HasService(pilot.SvcDeadlock) {
			cfg.NumProcs++
		}
	}
	pi, err := pilot.Configure(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var (
		factorCh   = make([]*pilot.Channel, workers) // main -> worker: broadcast factor
		dataCh     = make([]*pilot.Channel, workers) // main -> worker: scattered data
		toComb     = make([]*pilot.Channel, workers) // worker -> combiner
		combToMain *pilot.Channel
	)

	workerFunc := func(self *pilot.Self, index int, arg any) int {
		var factor int
		if err := factorCh[index].Read("%d", &factor); err != nil {
			return 1
		}
		part := make([]float64, perW)
		if err := dataCh[index].Read("%*lf", perW, part); err != nil {
			return 1
		}
		for i := range part {
			part[i] *= float64(factor)
		}
		if err := toComb[index].Write("%*lf", perW, part); err != nil {
			return 1
		}
		return 0
	}

	combinerFunc := func(self *pilot.Self, index int, arg any) int {
		self.SetName("Combiner")
		sel := arg.(*pilot.Bundle)
		total := 0.0
		for done := 0; done < workers; done++ {
			// Take results in arrival order, not channel order.
			idx, err := sel.Select()
			if err != nil {
				return 1
			}
			part := make([]float64, perW)
			if err := toComb[idx].Read("%*lf", perW, part); err != nil {
				return 1
			}
			for _, v := range part {
				total += v
			}
			self.Log(fmt.Sprintf("combined worker %d", idx))
		}
		if err := combToMain.Write("%lf", total); err != nil {
			return 1
		}
		return 0
	}

	comb, err := pi.CreateProcess(combinerFunc, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < workers; i++ {
		p, err := pi.CreateProcess(workerFunc, i, nil)
		if err != nil {
			log.Fatal(err)
		}
		if factorCh[i], err = pi.CreateChannel(pi.MainProc(), p); err != nil {
			log.Fatal(err)
		}
		if dataCh[i], err = pi.CreateChannel(pi.MainProc(), p); err != nil {
			log.Fatal(err)
		}
		if toComb[i], err = pi.CreateChannel(p, comb); err != nil {
			log.Fatal(err)
		}
	}
	if combToMain, err = pi.CreateChannel(comb, pi.MainProc()); err != nil {
		log.Fatal(err)
	}
	bcast, err := pi.CreateBundle(pilot.Broadcast, factorCh...)
	if err != nil {
		log.Fatal(err)
	}
	scatter, err := pi.CreateBundle(pilot.Scatter, dataCh...)
	if err != nil {
		log.Fatal(err)
	}
	sel, err := pi.CreateBundle(pilot.Select, toComb...)
	if err != nil {
		log.Fatal(err)
	}
	comb.SetArg(sel)

	if _, err := pi.StartAll(); err != nil {
		log.Fatal(err)
	}

	data := make([]float64, workers*perW)
	want := 0.0
	for i := range data {
		data[i] = float64(i)
		want += 3 * data[i]
	}
	if err := bcast.Broadcast("%d", 3); err != nil {
		log.Fatal(err)
	}
	if err := scatter.Scatter("%*lf", len(data), data); err != nil {
		log.Fatal(err)
	}
	var total float64
	if err := combToMain.Read("%lf", &total); err != nil {
		log.Fatal(err)
	}
	if err := pi.StopMain(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("combined total = %.1f (want %.1f)\n", total, want)
}
