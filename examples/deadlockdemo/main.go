// Deadlock demo: the classic novice mistake — two processes each blocked
// reading from the other — caught by Pilot's integrated deadlock detector
// (-pisvc=d) instead of hanging forever. The detector names the stuck
// processes, their operations and source lines, then aborts the program.
//
//	go run ./examples/deadlockdemo
package main

import (
	"fmt"
	"log"

	"repro/pilot"
)

func main() {
	cfg := pilot.Config{
		NumProcs:   4, // main + two workers + the detector's service process
		Services:   "d",
		CheckLevel: 3,
	}
	pi, err := pilot.Configure(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var aToB, bToA *pilot.Channel
	procA, err := pi.CreateProcess(func(self *pilot.Self, index int, arg any) int {
		var v int
		// A waits for B's message... but B is waiting for A's. Neither
		// ever writes: a textbook read/read cycle.
		if err := bToA.Read("%d", &v); err != nil {
			return 1
		}
		aToB.Write("%d", v+1)
		return 0
	}, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	procB, err := pi.CreateProcess(func(self *pilot.Self, index int, arg any) int {
		var v int
		if err := aToB.Read("%d", &v); err != nil {
			return 1
		}
		bToA.Write("%d", v+1)
		return 0
	}, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	procA.SetName("Alice")
	procB.SetName("Bob")
	if aToB, err = pi.CreateChannel(procA, procB); err != nil {
		log.Fatal(err)
	}
	if bToA, err = pi.CreateChannel(procB, procA); err != nil {
		log.Fatal(err)
	}

	if _, err := pi.StartAll(); err != nil {
		log.Fatal(err)
	}
	err = pi.StopMain(0)
	if err == nil {
		fmt.Println("unexpected: the deadlock was not detected")
		return
	}
	fmt.Println("the detector caught it:")
	fmt.Println(err)
	if rep := pi.DeadlockReport(); rep != nil {
		fmt.Printf("stuck processes: %v\n", rep.Procs)
	}
}
