// The acceptance gate for the parallel conversion pipeline: over the real
// example logs — the lab2 run, the thumbnail pipeline, and the collisions
// workload — conversion at any worker count must produce output
// byte-identical to the sequential (workers=1) conversion, warnings
// included.
package repro_test

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/collisions"
	"repro/internal/core"
	"repro/internal/lab2"
	"repro/internal/slog2"
	"repro/internal/thumbnail"
	"repro/vis"
)

// convertBytes converts clog at the given worker count and returns the
// serialized SLOG-2 bytes plus the conversion report.
func convertBytes(t *testing.T, clog string, workers int) ([]byte, *slog2.Report) {
	t.Helper()
	f, rep, err := vis.ConvertFile(clog, vis.ConvertOptions{Workers: workers})
	if err != nil {
		t.Fatalf("convert %s with %d workers: %v", clog, workers, err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants (%d workers): %v", workers, err)
	}
	var buf bytes.Buffer
	if err := slog2.Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rep
}

// checkByteIdentical converts the log sequentially and at several worker
// counts and requires identical bytes and identical warning streams.
func checkByteIdentical(t *testing.T, clog string) {
	t.Helper()
	ref, refRep := convertBytes(t, clog, 1)
	if len(ref) == 0 {
		t.Fatal("empty SLOG-2 output")
	}
	for _, workers := range []int{2, 4, 8} {
		got, rep := convertBytes(t, clog, workers)
		if !bytes.Equal(got, ref) {
			t.Errorf("workers=%d: SLOG-2 bytes differ from sequential (%d vs %d bytes)",
				workers, len(got), len(ref))
		}
		if len(rep.Warnings) != len(refRep.Warnings) {
			t.Errorf("workers=%d: %d warnings, sequential had %d",
				workers, len(rep.Warnings), len(refRep.Warnings))
			continue
		}
		for i := range rep.Warnings {
			if rep.Warnings[i] != refRep.Warnings[i] {
				t.Errorf("workers=%d: warning %d = %q, sequential %q",
					workers, i, rep.Warnings[i], refRep.Warnings[i])
			}
		}
	}
}

func TestConvertByteIdenticalLab2(t *testing.T) {
	clog := filepath.Join(t.TempDir(), "lab2.clog2")
	cfg := lab2.Config{W: 5, NUM: 10000, Seed: 3}
	cfg.Core.Services = "j"
	cfg.Core.JumpshotPath = clog
	if _, err := lab2.Run(cfg); err != nil {
		t.Fatal(err)
	}
	checkByteIdentical(t, clog)
}

func TestConvertByteIdenticalThumbnail(t *testing.T) {
	clog := filepath.Join(t.TempDir(), "thumbnail.clog2")
	cfg := thumbnail.Config{
		Workers:   9,
		NumImages: 40,
		ImageW:    96,
		ImageH:    64,
		Seed:      3,
		Core: core.Config{
			Services:     "j",
			CheckLevel:   3,
			JumpshotPath: clog,
		},
	}
	if _, err := thumbnail.Run(cfg); err != nil {
		t.Fatal(err)
	}
	checkByteIdentical(t, clog)
}

func TestConvertByteIdenticalCollisions(t *testing.T) {
	clog := filepath.Join(t.TempDir(), "collisions.clog2")
	cfg := collisions.Config{
		Workers: 4, Rows: 6000, Seed: 3,
		QueryCost: 10, QuerySleepPerRow: time.Microsecond,
	}
	cfg.Core.Services = "j"
	cfg.Core.JumpshotPath = clog
	if _, err := collisions.RunFixed(cfg); err != nil {
		t.Fatal(err)
	}
	checkByteIdentical(t, clog)
}
