// The acceptance gate for the parallel conversion pipeline: over the real
// example logs — the lab2 run, the thumbnail pipeline, and the collisions
// workload — conversion at any worker count must produce output
// byte-identical to the sequential (workers=1) conversion, warnings
// included.
package repro_test

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/clog2"
	"repro/internal/collisions"
	"repro/internal/core"
	"repro/internal/lab2"
	"repro/internal/slog2"
	"repro/internal/thumbnail"
	"repro/vis"
)

// convertBytes converts clog at the given worker count and returns the
// serialized SLOG-2 bytes plus the conversion report.
func convertBytes(t *testing.T, clog string, workers int) ([]byte, *slog2.Report) {
	t.Helper()
	f, rep, err := vis.ConvertFile(clog, vis.ConvertOptions{Workers: workers})
	if err != nil {
		t.Fatalf("convert %s with %d workers: %v", clog, workers, err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants (%d workers): %v", workers, err)
	}
	var buf bytes.Buffer
	if err := slog2.Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rep
}

// checkByteIdentical converts the log sequentially and at several worker
// counts and requires identical bytes and identical warning streams.
func checkByteIdentical(t *testing.T, clog string) {
	t.Helper()
	ref, refRep := convertBytes(t, clog, 1)
	if len(ref) == 0 {
		t.Fatal("empty SLOG-2 output")
	}
	for _, workers := range []int{2, 4, 8} {
		got, rep := convertBytes(t, clog, workers)
		if !bytes.Equal(got, ref) {
			t.Errorf("workers=%d: SLOG-2 bytes differ from sequential (%d vs %d bytes)",
				workers, len(got), len(ref))
		}
		if len(rep.Warnings) != len(refRep.Warnings) {
			t.Errorf("workers=%d: %d warnings, sequential had %d",
				workers, len(rep.Warnings), len(refRep.Warnings))
			continue
		}
		for i := range rep.Warnings {
			if rep.Warnings[i] != refRep.Warnings[i] {
				t.Errorf("workers=%d: warning %d = %q, sequential %q",
					workers, i, rep.Warnings[i], refRep.Warnings[i])
			}
		}
	}
}

func TestConvertByteIdenticalLab2(t *testing.T) {
	clog := filepath.Join(t.TempDir(), "lab2.clog2")
	cfg := lab2.Config{W: 5, NUM: 10000, Seed: 3}
	cfg.Core.Services = "j"
	cfg.Core.JumpshotPath = clog
	if _, err := lab2.Run(cfg); err != nil {
		t.Fatal(err)
	}
	checkByteIdentical(t, clog)
}

func TestConvertByteIdenticalThumbnail(t *testing.T) {
	clog := filepath.Join(t.TempDir(), "thumbnail.clog2")
	cfg := thumbnail.Config{
		Workers:   9,
		NumImages: 40,
		ImageW:    96,
		ImageH:    64,
		Seed:      3,
		Core: core.Config{
			Services:     "j",
			CheckLevel:   3,
			JumpshotPath: clog,
		},
	}
	if _, err := thumbnail.Run(cfg); err != nil {
		t.Fatal(err)
	}
	checkByteIdentical(t, clog)
}

// With virtual clocks pinned, the whole logging path — cargo builders,
// chunked record arenas, the block-chunk encoder, clock sync, and the
// rank-0 merge — must produce byte-identical CLOG-2 and SLOG-2 output
// run after run. This is the in-tree form of the acceptance gate that
// the builder rewrite left the log bytes unchanged.
func TestLogBytesDeterministicAcrossRuns(t *testing.T) {
	runOnce := func(clog string) []byte {
		t.Helper()
		cfg := lab2.Config{W: 4, NUM: 5000, Seed: 7}
		cfg.Core.Services = "j"
		cfg.Core.JumpshotPath = clog
		// One Manual clock per rank: every timestamp is reproducible, so
		// any byte difference between runs is a logging-path bug, not
		// scheduling noise.
		cfg.Core.Clocks = make([]clock.Source, 6)
		for i := range cfg.Core.Clocks {
			cfg.Core.Clocks[i] = clock.NewManual(float64(i))
		}
		if _, err := lab2.Run(cfg); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(clog)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	dir := t.TempDir()
	a := runOnce(filepath.Join(dir, "a.clog2"))
	b := runOnce(filepath.Join(dir, "b.clog2"))
	if !bytes.Equal(a, b) {
		t.Errorf("CLOG-2 bytes differ between identical runs (%d vs %d bytes)", len(a), len(b))
	}
	sa, _ := convertBytes(t, filepath.Join(dir, "a.clog2"), 1)
	sb, _ := convertBytes(t, filepath.Join(dir, "b.clog2"), 1)
	if !bytes.Equal(sa, sb) {
		t.Errorf("SLOG-2 bytes differ between identical runs")
	}
}

// Every cargo the builders emit on a real run must still follow the
// legacy Sprintf shapes the popups and tests rely on — the end-to-end
// check that no call-site migration changed the cargo text format.
func TestCargoShapesOnRealRun(t *testing.T) {
	clog := filepath.Join(t.TempDir(), "lab2.clog2")
	cfg := lab2.Config{W: 3, NUM: 2000, Seed: 5}
	cfg.Core.Services = "j"
	cfg.Core.JumpshotPath = clog
	if _, err := lab2.Run(cfg); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(clog)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	log, complete, err := clog2.ReadLenient(f)
	if err != nil || !complete {
		t.Fatalf("read clog: complete=%v err=%v", complete, err)
	}
	shapes := []*regexp.Regexp{
		regexp.MustCompile(`^$`),
		regexp.MustCompile(`^phase: configuration$`),
		regexp.MustCompile(`^proc: \S+( idx: -?\d+)?$`),
		regexp.MustCompile(`^status: -?\d+$`),
		regexp.MustCompile(`^line: \S+\.go:\d+( proc: \S+)?( idx: -?\d+| bund: \S+)?`),
		regexp.MustCompile(`^chan: \S+ (msg|part): \d+/\d+$`),
		regexp.MustCompile(`^chan: \S+ (val|len|has|first)`),
		regexp.MustCompile(`^t: -?\d+\.\d{6} line: \S+`),
		regexp.MustCompile(`^ready: -?\d+$`),
		regexp.MustCompile(`^bund: \S+ ready: -?\d+ line: `),
		regexp.MustCompile(`^mpe: synthetic end`),
	}
	checked := 0
	for _, blk := range log.Blocks {
		for _, rec := range blk.Records {
			if rec.Type != clog2.RecCargoEvt {
				continue
			}
			cargo := rec.CargoText()
			ok := false
			for _, re := range shapes {
				if re.MatchString(cargo) {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("cargo %q matches no known call-site shape", cargo)
			}
			checked++
		}
	}
	if checked < 50 {
		t.Fatalf("only %d cargo records checked; lab2 run looks wrong", checked)
	}
}

func TestConvertByteIdenticalCollisions(t *testing.T) {
	clog := filepath.Join(t.TempDir(), "collisions.clog2")
	cfg := collisions.Config{
		Workers: 4, Rows: 6000, Seed: 3,
		QueryCost: 10, QuerySleepPerRow: time.Microsecond,
	}
	cfg.Core.Services = "j"
	cfg.Core.JumpshotPath = clog
	if _, err := collisions.RunFixed(cfg); err != nil {
		t.Fatal(err)
	}
	checkByteIdentical(t, clog)
}
