package pilot_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/pilot"
	"repro/vis"
)

// The paper's Fig. 3 program ("lab 2") through the public API, end to end
// into the visualization pipeline.
func TestLab2ThroughPublicAPI(t *testing.T) {
	const W = 5
	const NUM = 10000
	dir := t.TempDir()
	clogPath := filepath.Join(dir, "lab2.clog2")

	var errBuf bytes.Buffer
	cfg := pilot.Config{
		NumProcs:     W + 1,
		Services:     "j",
		CheckLevel:   3,
		JumpshotPath: clogPath,
		Stderr:       &errBuf,
	}
	pi, err := pilot.Configure(cfg)
	if err != nil {
		t.Fatal(err)
	}

	toWorker := make([]*pilot.Channel, W)
	result := make([]*pilot.Channel, W)
	workerFunc := func(self *pilot.Self, index int, arg any) int {
		var myshare int
		if err := toWorker[index].Read("%d", &myshare); err != nil {
			t.Errorf("worker %d: %v", index, err)
			return 1
		}
		buff := make([]int, myshare)
		if err := toWorker[index].Read("%*d", myshare, buff); err != nil {
			t.Errorf("worker %d: %v", index, err)
			return 1
		}
		sum := 0
		for _, v := range buff {
			sum += v
		}
		if err := result[index].Write("%d", sum); err != nil {
			t.Errorf("worker %d: %v", index, err)
			return 1
		}
		return 0
	}
	for i := 0; i < W; i++ {
		w, err := pi.CreateProcess(workerFunc, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		if toWorker[i], err = pi.CreateChannel(pi.MainProc(), w); err != nil {
			t.Fatal(err)
		}
		if result[i], err = pi.CreateChannel(w, pi.MainProc()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pi.StartAll(); err != nil {
		t.Fatal(err)
	}

	numbers := make([]int, NUM)
	want := 0
	for i := range numbers {
		numbers[i] = i % 97
		want += numbers[i]
	}
	for i := 0; i < W; i++ {
		portion := NUM / W
		if i == W-1 {
			portion += NUM % W
		}
		if err := toWorker[i].Write("%d", portion); err != nil {
			t.Fatal(err)
		}
		if err := toWorker[i].Write("%*d", portion, numbers[i*(NUM/W):]); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for i := 0; i < W; i++ {
		var sum int
		if err := result[i].Read("%d", &sum); err != nil {
			t.Fatal(err)
		}
		total += sum
	}
	if err := pi.StopMain(0); err != nil {
		t.Fatal(err)
	}
	if total != want {
		t.Fatalf("grand total = %d, want %d", total, want)
	}

	// Visualize: the full pipeline must run clean and show lab2's shape.
	slogPath := filepath.Join(dir, "lab2.slog2")
	svgPath := filepath.Join(dir, "lab2.svg")
	f, rep, err := vis.Pipeline(clogPath, slogPath, svgPath, vis.ConvertOptions{}, vis.View{Title: "lab2"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnmatchedSends != 0 || rep.UnmatchedRecvs != 0 || rep.NestingErrors != 0 {
		t.Fatalf("conversion not clean: %+v\n%v", rep, rep.Warnings)
	}
	// Fig. 3 structure: 15 arrows (5 workers × (2 to + 1 from)), 10 reads
	// on workers + 5 reads on main, 10 writes on main + 5 on workers.
	legend := vis.Legend(f, f.Start, f.End)
	byName := map[string]vis.LegendEntry{}
	for _, e := range legend {
		byName[e.Name] = e
	}
	if got := byName["PI_Read"].Count; got != 15 {
		t.Errorf("PI_Read count = %d, want 15", got)
	}
	if got := byName["PI_Write"].Count; got != 15 {
		t.Errorf("PI_Write count = %d, want 15", got)
	}
	if got := byName["Compute"].Count; got != 6 {
		t.Errorf("Compute count = %d, want 6 timelines", got)
	}
	hits := vis.Search(f, vis.SearchOptions{Name: "arrow", Rank: -1})
	if len(hits) != 15 {
		t.Errorf("arrows = %d, want 15", len(hits))
	}
	ascii := vis.RenderASCII(f, vis.View{Width: 80})
	if !strings.Contains(ascii, "PI_MAIN") {
		t.Errorf("ascii render:\n%s", ascii)
	}
	if rdSLOG, err := vis.ReadSLOG2(slogPath); err != nil || rdSLOG.NumRanks != f.NumRanks {
		t.Fatalf("slog2 roundtrip: %v", err)
	}
}

func TestSelfOperations(t *testing.T) {
	cfg := pilot.Config{NumProcs: 2, JumpshotPath: filepath.Join(t.TempDir(), "x.clog2")}
	pi, err := pilot.Configure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	_, err = pi.CreateProcess(func(self *pilot.Self, index int, arg any) int {
		defer close(done)
		if self.Rank() != 1 {
			t.Errorf("rank = %d", self.Rank())
		}
		self.SetName("Worker")
		if self.Name() != "Worker" {
			t.Errorf("name = %q", self.Name())
		}
		t0 := self.StartTime()
		t1 := self.EndTime()
		if t1 < t0 {
			t.Errorf("EndTime %v < StartTime %v", t1, t0)
		}
		if err := self.Log("hello from worker"); err != nil {
			t.Error(err)
		}
		if self.IsLogging(pilot.SvcJumpshot) {
			t.Error("IsLogging(j) true without service")
		}
		return 0
	}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pi.StartAll(); err != nil {
		t.Fatal(err)
	}
	<-done
	if err := pi.StopMain(0); err != nil {
		t.Fatal(err)
	}
}
