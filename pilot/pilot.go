// Package pilot is the public face of this Go reproduction of the Pilot
// library — "a friendly face for MPI" — together with the log
// visualization facility added by Bao & Gardner's paper. It re-exports the
// runtime in internal/core under the names a Pilot user expects.
//
// # C API mapping
//
//	PI_Configure(&argc,&argv)      cfg := pilot.Config{...}; pilot.ParseArgs(&cfg, os.Args[1:]);
//	                               pi, err := pilot.Configure(cfg)
//	PI_CreateProcess(f, i, p)      w, err := pi.CreateProcess(f, i, p)
//	PI_CreateChannel(from, to)     ch, err := pi.CreateChannel(from, to)
//	PI_CreateBundle(PI_SELECT,...) b, err := pi.CreateBundle(pilot.Select, chans...)
//	PI_StartAll()                  self, err := pi.StartAll()
//	PI_StopMain(status)            err := pi.StopMain(status)
//	PI_Write(c, "%d %*f", ...)     err := c.Write("%d %*f", ...)
//	PI_Read(c, "%d", &x)           err := c.Read("%d", &x)
//	PI_Read(c, "%^d", &n, &buf)    err := c.Read("%^d", &buf)   // length = len(buf)
//	PI_Broadcast(b, ...)           err := b.Broadcast(...)
//	PI_Scatter / PI_Gather         b.Scatter(...) / b.Gather(...)
//	PI_Reduce(b, PI_SUM, ...)      b.Reduce(pilot.Sum, ...)
//	PI_Select(b)                   idx, err := b.Select()
//	PI_TrySelect(b)                idx, err := b.TrySelect()
//	PI_ChannelHasData(c)           ok, err := c.HasData()
//	PI_SetName(x, name)            x.SetName(name)
//	PI_Log(text)                   self.Log(text)
//	PI_StartTime() / PI_EndTime()  self.StartTime() / self.EndTime()
//	PI_Abort(code, msg)            self.Abort(code, msg)
//	PI_IsLogging()                 self.IsLogging(pilot.SvcJumpshot)
//
// Run-time services are selected exactly like Pilot's command line:
// -pisvc=cdj (c = native call log, d = deadlock detector, j = Jumpshot/MPE
// visual log) and -picheck=N for the error-check level 0–3; ParseArgs
// consumes them. With "j" enabled, StopMain writes a merged CLOG-2 file
// that cmd/clog2slog converts for viewing with cmd/jumpshot.
package pilot

import (
	"repro/internal/core"
	"repro/internal/stats"
)

// Core types, re-exported.
type (
	// Config is PI_Configure's input: world size, services, check level.
	Config = core.Config
	// Runtime is a configured Pilot program.
	Runtime = core.Runtime
	// Process is a created Pilot process (PI_PROCESS*).
	Process = core.Process
	// Channel is a one-way typed conduit (PI_CHANNEL*).
	Channel = core.Channel
	// Bundle is a set of channels for collectives (PI_BUNDLE*).
	Bundle = core.Bundle
	// Self is the process-context handle passed to work functions.
	Self = core.Self
	// WorkFunc is a process body: func(self, index, arg) status.
	WorkFunc = core.WorkFunc
	// Error is the diagnostic type for all API failures.
	Error = core.Error
	// BundleUsage declares a bundle's collective operation.
	BundleUsage = core.BundleUsage
	// ReduceOp selects the PI_Reduce combining operation.
	ReduceOp = core.ReduceOp
)

// Bundle usages (PI_BROADCAST, PI_SCATTER, PI_GATHER, PI_REDUCE,
// PI_SELECT).
const (
	Broadcast = core.UsageBroadcast
	Scatter   = core.UsageScatter
	Gather    = core.UsageGather
	Reduce    = core.UsageReduce
	Select    = core.UsageSelect
)

// Reduce operations (PI_SUM, PI_PROD, PI_MIN, PI_MAX).
const (
	Sum  = core.OpSum
	Prod = core.OpProd
	Min  = core.OpMin
	Max  = core.OpMax
)

// Service letters for Config.Services / Self.IsLogging.
const (
	SvcNativeLog = core.SvcNativeLog
	SvcDeadlock  = core.SvcDeadlock
	SvcJumpshot  = core.SvcJumpshot
)

// Live-metrics types (Config.Metrics / -pistats), re-exported so
// programs can read Runtime.Metrics() without importing internals.
type (
	// Metrics is the per-rank, per-channel live counter collector; nil
	// when the run was configured without Config.Metrics.
	Metrics = stats.Collector
	// MetricsSnapshot is one merged read of a Metrics collector.
	MetricsSnapshot = stats.Snapshot
)

// DefaultArrowSpread is the 1 ms collective fan-out delay from the paper.
const DefaultArrowSpread = core.DefaultArrowSpread

// Configure is PI_Configure: validate cfg and enter the configuration
// phase.
func Configure(cfg Config) (*Runtime, error) { return core.NewRuntime(cfg) }

// ParseArgs consumes Pilot's command-line options (-pisvc=, -picheck=,
// -piprocs=) from args into cfg and returns the remaining arguments.
func ParseArgs(cfg *Config, args []string) ([]string, error) {
	return core.ParseArgs(cfg, args)
}
